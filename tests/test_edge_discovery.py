"""Tests for the edge-discovery problem and the Lemma 2.1 adversary."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowerbounds import (
    HalvingProber,
    Instance,
    Knowledge,
    LexicographicProber,
    ShuffledProber,
    all_edges,
    enumerate_instances,
    lemma21_lower_bound,
    run_adversary,
    run_discovery,
    sample_instances,
)


class TestInstance:
    def test_make_valid(self):
        inst = Instance.make(5, [((1, 2), 1), ((3, 4), 2)], excluded=[(1, 5)])
        assert inst.x_size == 2
        assert inst.label_of((1, 2)) == 1
        assert inst.label_of((2, 1)) == 1  # canonicalized
        assert inst.label_of((2, 3)) is None

    def test_labels_must_be_1_to_x(self):
        with pytest.raises(ValueError):
            Instance.make(5, [((1, 2), 2)])  # missing label 1
        with pytest.raises(ValueError):
            Instance.make(5, [((1, 2), 1), ((3, 4), 1)])

    def test_duplicate_edges(self):
        with pytest.raises(ValueError):
            Instance.make(5, [((1, 2), 1), ((2, 1), 2)])

    def test_x_y_disjoint(self):
        with pytest.raises(ValueError):
            Instance.make(5, [((1, 2), 1)], excluded=[(1, 2)])


class TestEnumeration:
    def test_all_edges_count(self):
        assert len(all_edges(5)) == 10
        assert len(all_edges(6)) == 15

    def test_enumerate_count(self):
        # ordered 2-tuples of distinct edges of K*_4: 6 * 5 = 30
        assert len(enumerate_instances(4, 2)) == 30

    def test_enumerate_with_excluded(self):
        # exclude one edge: 5 * 4 = 20
        assert len(enumerate_instances(4, 2, excluded=[(1, 2)])) == 20

    def test_enumerate_all_distinct(self):
        fam = enumerate_instances(4, 2)
        assert len(set(fam)) == len(fam)

    def test_sample_distinct(self):
        fam = sample_instances(6, 3, 50, random.Random(0))
        assert len(fam) == 50
        assert len(set(fam)) == 50


class TestRunDiscovery:
    def test_lex_prober_finds_everything(self):
        inst = Instance.make(5, [((2, 3), 1), ((4, 5), 2)])
        probes = run_discovery(LexicographicProber(), inst)
        assert probes <= len(all_edges(5))

    def test_skips_excluded(self):
        excluded = [(1, 2), (1, 3)]
        inst = Instance.make(5, [((1, 4), 1)], excluded=excluded)
        knowledge_probes = run_discovery(LexicographicProber(), inst)
        # lex order skips the two excluded edges, finds (1,4) on probe 1
        assert knowledge_probes == 1

    def test_probe_limit(self):
        inst = Instance.make(5, [((4, 5), 1)])
        with pytest.raises(RuntimeError):
            run_discovery(LexicographicProber(), inst, max_probes=1)


class TestAdversary:
    def test_bound_certified_exhaustive(self):
        fam = enumerate_instances(5, 2)
        for prober in (LexicographicProber(), ShuffledProber(1), HalvingProber()):
            res = run_adversary(prober, fam)
            assert res.certified
            assert res.probes >= res.lower_bound

    def test_surviving_instance_consistent(self):
        fam = enumerate_instances(4, 2)
        res = run_adversary(LexicographicProber(), fam)
        assert res.surviving in fam

    def test_adversary_answers_replayable(self):
        # running the same prober against the surviving instance alone must
        # produce exactly the same probe count (the adversary never lies)
        fam = enumerate_instances(5, 2)
        res = run_adversary(LexicographicProber(), fam)
        replay = run_discovery(LexicographicProber(), res.surviving)
        assert replay == res.probes

    def test_mixed_family_rejected(self):
        a = enumerate_instances(4, 2)
        b = enumerate_instances(5, 2)
        with pytest.raises(ValueError):
            run_adversary(LexicographicProber(), [a[0], b[0]])

    def test_empty_family_rejected(self):
        with pytest.raises(ValueError):
            run_adversary(LexicographicProber(), [])

    def test_lower_bound_formula(self):
        assert lemma21_lower_bound(1024, 1) == pytest.approx(10.0)
        assert lemma21_lower_bound(1024, 2) == pytest.approx(9.0)

    def test_larger_family_forces_more(self):
        small = sample_instances(6, 2, 20, random.Random(1))
        res_small = run_adversary(ShuffledProber(2), small)
        full = enumerate_instances(6, 2)
        res_full = run_adversary(ShuffledProber(2), full)
        assert res_full.probes >= res_small.probes

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=4, max_value=6),
        st.integers(min_value=1, max_value=2),
        st.integers(min_value=0, max_value=1000),
    )
    def test_certified_property(self, n, x_size, seed):
        fam = enumerate_instances(n, x_size)
        res = run_adversary(ShuffledProber(seed), fam)
        assert res.certified

    def test_subfamily_certified(self):
        # Lemma 2.1 holds for ANY instance subfamily, not just the full one
        rng = random.Random(9)
        fam = sample_instances(7, 2, 120, rng)
        res = run_adversary(HalvingProber(), fam)
        assert res.probes >= math.log2(120) - math.log2(2)


class TestKnowledge:
    def test_found_and_done(self):
        k = Knowledge(n=5, x_size=2, excluded=frozenset())
        assert not k.done
        k.answers[(1, 2)] = None
        k.answers[(1, 3)] = 1
        assert k.found == 1
        k.answers[(2, 3)] = 2
        assert k.done

    def test_unprobed_filters(self):
        k = Knowledge(n=4, x_size=1, excluded=frozenset({(1, 2)}))
        k.answers[(1, 3)] = None
        rest = k.unprobed(all_edges(4))
        assert (1, 2) not in rest
        assert (1, 3) not in rest
        assert (1, 4) in rest
