"""Zero-advice depth-first token wakeup — the other classic baseline.

A single token (carrying the source message) performs a depth-first
traversal of the unknown port-labeled network: the holder tries its ports in
increasing order, skipping the port it was woken through; a neighbor that is
already awake bounces the token straight back; a neighbor that is new adopts
the holder as parent and recurses, returning the token when its own ports
are exhausted.

Every node tries each non-parent port exactly once and every try is answered
by exactly one return, so the message complexity is
``2 * (2m - (n - 1)) - 2(n-1)``-ish — ``Theta(m)``, like flooding, but with
the sequential structure that makes it a *wakeup* algorithm usable as the
zero-advice comparator on dense gadget families (it is painfully quadratic
on ``K*_n``-derived graphs, which is the paper's point).

Only token holders ever transmit, so the wakeup constraint holds.  The
scheme is anonymous (ports only) and its payloads are two constant tokens.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..core.scheme import Algorithm
from ..encoding import BitString
from ..simulator.node import NodeContext

__all__ = ["DFSTokenWakeup", "TOKEN", "RETURN", "dfs_message_upper_bound"]

#: The roving token; it carries the source message.
TOKEN = "token"
#: "Your try is answered — move on" (sent both on bounce and on finish).
RETURN = "ret"


def dfs_message_upper_bound(num_nodes: int, num_edges: int) -> int:
    """Upper bound on DFS-token messages: two per try, tries = ``2m - n + 1``."""
    return 2 * (2 * num_edges - num_nodes + 1)


class _DFSScheme:
    def __init__(self) -> None:
        self._visited = False
        self._parent_port: Optional[int] = None
        self._cursor = 0  # next port to try

    def on_init(self, ctx: NodeContext) -> None:
        if ctx.is_source:
            self._visited = True
            self._advance(ctx)

    def on_receive(self, ctx: NodeContext, payload, port: int) -> None:
        if payload == TOKEN:
            if self._visited:
                ctx.send(RETURN, port)  # bounce: already awake
            else:
                self._visited = True
                self._parent_port = port
                self._advance(ctx)
        elif payload == RETURN:
            self._advance(ctx)

    def _advance(self, ctx: NodeContext) -> None:
        """Try the next port, or give the token back when exhausted."""
        while self._cursor < ctx.degree and self._cursor == self._parent_port:
            self._cursor += 1
        if self._cursor < ctx.degree:
            ctx.send(TOKEN, self._cursor)
            self._cursor += 1
        elif self._parent_port is not None:
            ctx.send(RETURN, self._parent_port)
        # else: the source has exhausted its ports — traversal complete.


class DFSTokenWakeup(Algorithm):
    """Oracle-free DFS token traversal; a valid wakeup algorithm."""

    is_wakeup_algorithm = True
    anonymous_safe = True

    def scheme_for(
        self,
        advice: BitString,
        is_source: bool,
        node_id: Optional[Hashable],
        degree: int,
    ) -> _DFSScheme:
        return _DFSScheme()
