"""Known-bad fixture for DET001: set iteration order leaks into outputs."""


def labels(nodes):
    seen = set(nodes)
    return list(seen)  # hash-order-dependent list


def report_lines(edges):
    frontier = {e for e in edges}
    out = []
    for e in frontier:
        out.append(f"edge {e}")  # ordered sink fed in set order
    return out
