#!/usr/bin/env python
"""Quickstart: the paper's two constructions on one network.

Builds a 64-node network, runs

* Theorem 2.1 — spanning-tree oracle + tree wakeup (n log n bits, n-1 msgs),
* Theorem 3.1 — light-tree oracle + Scheme B (<= 8n bits, <= 2(n-1) msgs),
* the zero-advice flooding baseline (0 bits, 2m - n + 1 msgs),

and prints the advice/message trade-off that is the paper's subject.

Run:  python examples/quickstart.py [n]
"""

import sys

from repro import (
    Flooding,
    LightTreeBroadcastOracle,
    NullOracle,
    SchemeB,
    SpanningTreeWakeupOracle,
    TreeWakeup,
    complete_graph_star,
    run_broadcast,
    run_wakeup,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    graph = complete_graph_star(n)
    print(f"Network: canonically port-labeled complete graph K*_{n} "
          f"({graph.num_nodes} nodes, {graph.num_edges} edges)\n")

    wakeup = run_wakeup(graph, SpanningTreeWakeupOracle(), TreeWakeup())
    broadcast = run_broadcast(graph, LightTreeBroadcastOracle(), SchemeB())
    flooding = run_broadcast(graph, NullOracle(), Flooding())

    header = f"{'task':<22}{'oracle bits':>12}{'messages':>10}{'complete':>10}"
    print(header)
    print("-" * len(header))
    for label, r in (
        ("wakeup (Thm 2.1)", wakeup),
        ("broadcast (Thm 3.1)", broadcast),
        ("flooding (baseline)", flooding),
    ):
        print(f"{label:<22}{r.oracle_bits:>12}{r.messages:>10}{str(r.success):>10}")

    print()
    print(f"The separation: wakeup paid {wakeup.oracle_bits} advice bits "
          f"(~n log n) where broadcast paid {broadcast.oracle_bits} (~2n) — ")
    print(f"a ratio of {wakeup.oracle_bits / broadcast.oracle_bits:.2f}, growing like log n.")
    print(f"Both used a linear number of messages; flooding, with zero advice, "
          f"paid {flooding.messages} (Theta(n^2) here).")


if __name__ == "__main__":
    main()
