"""Indexed full-map oracle: the whole network, plus "you are node #i".

:class:`repro.core.FullMapOracle` hands every node the same serialized
topology — but a scheme cannot *use* a map without knowing where it stands
on it.  :class:`IndexedFullMapOracle` appends each node's own index (in the
sorted-label order the serialization uses) so a scheme can orient itself;
:func:`decode_indexed_map` recovers ``(adjacency-by-port, own_index)``.

This is the heavyweight comparator for the wakeup task: paired with
:class:`repro.algorithms.FullMapWakeup` it achieves the same optimal
``n - 1`` messages as Theorem 2.1 — while paying ``Theta(n (n + m) log n)``
advice bits instead of ``Theta(n log n)``.  Knowing *everything* is
sufficient; the paper's point is how little is *necessary*.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.oracle import AdviceMap, FullMapOracle, Oracle
from ..encoding import BitReader, BitString, encode_fixed
from ..network.graph import PortLabeledGraph, label_key

__all__ = ["IndexedFullMapOracle", "decode_indexed_map"]


class IndexedFullMapOracle(Oracle):
    """Full topology blob + the receiving node's own index."""

    def advise(self, graph: PortLabeledGraph) -> AdviceMap:
        blob = FullMapOracle.encode_graph(graph)
        order = sorted(graph.nodes(), key=label_key)
        n = len(order)
        width = max(1, n.bit_length())
        return AdviceMap(
            {v: blob + encode_fixed(i, width) for i, v in enumerate(order)}
        )


def decode_indexed_map(advice: BitString) -> Optional[Tuple[List[List[int]], int]]:
    """Decode ``(port_to_neighbor_index per node, own_index)``.

    ``result[0][i][p]`` is the index of the node reached from node ``i``
    through its port ``p``.  Returns ``None`` on damaged advice.
    """
    # The field width is max(1, n.bit_length()) with n unknown; try widths
    # until a parse is self-consistent and consumes the string exactly.
    for width in range(1, len(advice) + 1):
        reader = BitReader(advice)
        try:
            n = reader.read_int(width)
        except EOFError:
            return None
        if n <= 0 or max(1, n.bit_length()) != width:
            continue
        try:
            tables: List[List[int]] = []
            for __ in range(n):
                deg = reader.read_int(width)
                if deg >= n:
                    raise ValueError
                row = [reader.read_int(width) for __ in range(deg)]
                if any(not 0 <= x < n for x in row):
                    raise ValueError
                tables.append(row)
            own = reader.read_int(width)
            if not reader.exhausted() or not 0 <= own < n:
                raise ValueError
            return tables, own
        except (EOFError, ValueError):
            continue
    return None
