"""Parameter sweeps: run a measurement over (family, size) grids.

Experiments are mostly of one shape — "for every graph family and every
size, run some (oracle, algorithm) pairs and record a row".  This module is
that loop, with reproducible family builders and failure capture (a failed
run becomes a row with ``success=False``; a failed *builder* becomes a row
with ``skipped=True`` and the exception type — never a silently missing
cell).

The loop body lives in :func:`run_sweep_cell` so that the serial sweep here
and the process-pool executor in :mod:`repro.parallel` execute *the same
code* per cell — that shared body is what makes the parallel path's rows
and event stream byte-identical to a serial run.

Row keys: every row carries both ``n`` (the actual ``graph.num_nodes`` for
measured cells) and ``requested_n`` (the grid coordinate handed to the
builder).  The two differ for families like ``grid`` that round to a
feasible size, and skipped cells only ever knew the request — recording
both keeps grids joinable on either axis.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence

from ..core.oracle import Oracle
from ..core.scheme import Algorithm
from ..core.tasks import TaskResult, run_broadcast, run_wakeup
from ..network.builders import FAMILY_BUILDERS
from ..network.graph import PortLabeledGraph
from ..obs.events import SweepCellMeasured, SweepCellSkipped
from ..obs.observe import Observation, resolve_obs

__all__ = [
    "sweep_families",
    "run_sweep_cell",
    "measurement_keywords",
    "skipped_row",
    "failed_row",
    "run_pair",
    "task_result_row",
]

GraphBuilder = Callable[[int], PortLabeledGraph]
Measurement = Callable[[str, int, PortLabeledGraph], Dict[str, Any]]

#: Optional keyword arguments a measurement may declare to receive the
#: sweep's context: ``obs`` (the cell's Observation — in a parallel run
#: this is a worker-local handle whose events are re-emitted in grid
#: order) and ``cache`` (the run's ConstructionCache, when one is active).
MEASUREMENT_KEYWORDS = frozenset({"obs", "cache"})


def measurement_keywords(measurement: Measurement) -> FrozenSet[str]:
    """Which of :data:`MEASUREMENT_KEYWORDS` ``measurement`` accepts.

    Plain three-argument measurements get exactly the historical call;
    measurements that also declare ``obs=``/``cache=`` (or ``**kwargs``)
    receive the sweep's telemetry handle and construction cache.
    """
    try:
        params = inspect.signature(measurement).parameters
    except (TypeError, ValueError):
        return frozenset()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return MEASUREMENT_KEYWORDS
    return MEASUREMENT_KEYWORDS & frozenset(params)


def skipped_row(family: str, n: int, error: str, detail: str) -> Dict[str, Any]:
    """The structured row for a cell whose *builder* failed (deterministic;
    part of the sweep's result stream)."""
    return {
        "family": family,
        "n": n,
        "requested_n": n,
        "skipped": True,
        "error": error,
        "detail": detail,
    }


def failed_row(
    family: str, n: int, error: str, detail: str, attempts: int
) -> Dict[str, Any]:
    """The structured row for a cell the fault-tolerant runner gave up on
    (crash/timeout/exception after exhausting retries — host-dependent, so
    it appears only in faulted runs; see :mod:`repro.runner`)."""
    return {
        "family": family,
        "n": n,
        "requested_n": n,
        "failed": True,
        "error": error,
        "detail": detail,
        "attempts": attempts,
    }


def run_sweep_cell(
    family: str,
    n: int,
    measurement: Measurement,
    obs: Observation,
    cache=None,
    accepts: Optional[FrozenSet[str]] = None,
) -> Dict[str, Any]:
    """Execute one (family, n) cell: build, measure, emit, return the row.

    This is the single cell body shared by :func:`sweep_families` and the
    parallel executor.  Builder failures become structured skipped rows
    (with a :class:`repro.obs.SweepCellSkipped` event); measurement
    failures propagate — a broken measurement is a bug, not a grid gap.
    When ``cache`` is given, graph construction goes through
    ``cache.graph(family, n)``.
    """
    builder = FAMILY_BUILDERS[family]
    try:
        if cache is not None:
            graph = cache.graph(family, n, builder=lambda: builder(n))
        else:
            graph = builder(n)
    except Exception as exc:
        row = skipped_row(family, n, type(exc).__name__, str(exc))
        if obs.enabled:
            obs.emit(
                SweepCellSkipped(
                    family=family, n=n, error=type(exc).__name__, detail=str(exc)
                )
            )
        return row
    if accepts is None:
        accepts = measurement_keywords(measurement)
    kwargs: Dict[str, Any] = {}
    if "obs" in accepts:
        kwargs["obs"] = obs
    if "cache" in accepts and cache is not None:
        kwargs["cache"] = cache
    # Profiler-only span (never an event): per-cell cost attribution for
    # `repro profile`, invisible to the deterministic stream contracts.
    with obs.wallspan(f"cell/{family}/{n}"):
        row = measurement(family, n, graph, **kwargs)
    row.setdefault("family", family)
    row.setdefault("n", graph.num_nodes)
    row.setdefault("requested_n", n)
    if obs.enabled:
        obs.emit(SweepCellMeasured(family=family, n=graph.num_nodes))
    return row


def sweep_families(
    sizes: Sequence[int],
    measurement: Measurement,
    families: Optional[Iterable[str]] = None,
    obs: Optional[Observation] = None,
    cache=None,
) -> List[Dict[str, Any]]:
    """Apply ``measurement(family, n, graph)`` over the grid; one row each.

    ``families`` defaults to every named family in
    :data:`repro.network.FAMILY_BUILDERS`.  A builder error (e.g. a family
    that needs a larger minimum size) no longer silently skips the cell:
    it records a structured row ``{"family", "n", "requested_n",
    "skipped": True, "error": <exception type>, "detail": <message>}`` and
    emits a :class:`repro.obs.SweepCellSkipped` event, so a sweep can never
    under-cover the grid without the gap showing up in its own output.
    Filter with ``[r for r in rows if not r.get("skipped")]`` where only
    measured cells are wanted.

    ``cache`` — an optional
    :class:`repro.parallel.ConstructionCache` — memoizes graph
    construction across cells and runs; measurements that declare a
    ``cache=`` keyword receive it too (see :func:`measurement_keywords`).
    For multi-process execution of the same grid, see
    :func:`repro.parallel.parallel_sweep_families`, which falls back to
    this exact function at ``workers=1``.
    """
    obs = resolve_obs(obs)
    chosen = list(families) if families is not None else sorted(FAMILY_BUILDERS)
    accepts = measurement_keywords(measurement)
    rows: List[Dict[str, Any]] = []
    for family in chosen:
        for n in sizes:
            rows.append(
                run_sweep_cell(family, n, measurement, obs, cache=cache, accepts=accepts)
            )
    return rows


def run_pair(
    graph: PortLabeledGraph,
    oracle: Oracle,
    algorithm: Algorithm,
    task: str = "broadcast",
    **kwargs,
) -> TaskResult:
    """Run one (oracle, algorithm) pair; ``task`` is ``broadcast``/``wakeup``.

    Keyword arguments (including ``obs=`` for telemetry and
    ``trace_level="counters"`` for log-free counting runs) pass straight
    through to :func:`repro.core.run_broadcast` / :func:`repro.core.run_wakeup`.
    """
    if task == "broadcast":
        return run_broadcast(graph, oracle, algorithm, **kwargs)
    if task == "wakeup":
        return run_wakeup(graph, oracle, algorithm, **kwargs)
    raise ValueError(f"unknown task {task!r}")


def task_result_row(result: TaskResult) -> Dict[str, Any]:
    """Flatten a :class:`TaskResult` into a table row."""
    return {
        "task": result.task,
        "n": result.graph_nodes,
        "m": result.graph_edges,
        "oracle": result.oracle_name,
        "algorithm": result.algorithm_name,
        "oracle_bits": result.oracle_bits,
        "messages": result.messages,
        "success": result.success,
        "rounds": result.rounds,
    }
