"""Tests for the stock topology builders."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    FAMILY_BUILDERS,
    GraphError,
    balanced_tree,
    complete_bipartite,
    complete_graph_star,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_connected_gnp,
    random_regular,
    random_tree,
    star_graph,
)


class TestCompleteGraphStar:
    def test_basic_shape(self):
        g = complete_graph_star(5)
        assert g.num_nodes == 5
        assert g.num_edges == 10
        assert g.source == 1
        assert g.frozen

    def test_rotational_ports_are_canonical(self):
        # port at i towards j is (j - i - 1) mod n
        g = complete_graph_star(6)
        for i in range(1, 7):
            for j in range(1, 7):
                if i != j:
                    assert g.port(i, j) == (j - i - 1) % 6

    @given(st.integers(min_value=2, max_value=24))
    def test_ports_bijective_for_all_n(self, n):
        g = complete_graph_star(n)
        for v in g.nodes():
            assert sorted(g.ports(v)) == list(range(n - 1))

    def test_too_small(self):
        with pytest.raises(GraphError):
            complete_graph_star(1)


class TestBasicFamilies:
    def test_path(self):
        g = path_graph(5)
        assert g.num_nodes == 5
        assert g.num_edges == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star_center_source(self):
        g = star_graph(7)
        assert g.num_nodes == 7
        assert g.degree(0) == 6
        assert g.source == 0

    def test_star_leaf_source(self):
        g = star_graph(7, center_source=False)
        assert g.source == 1

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.num_nodes == 7
        assert g.num_edges == 12

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4
        assert g.source == (0, 0)

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.num_nodes == 16
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_balanced_tree(self):
        g = balanced_tree(2, 3)
        assert g.num_nodes == 15
        assert g.num_edges == 14

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            grid_graph(0, 3)
        with pytest.raises(GraphError):
            hypercube_graph(0)
        with pytest.raises(GraphError):
            star_graph(1)
        with pytest.raises(GraphError):
            complete_bipartite(0, 2)
        with pytest.raises(GraphError):
            balanced_tree(0, 1)


class TestRandomFamilies:
    def test_random_tree_is_tree(self):
        for seed in range(5):
            g = random_tree(12, random.Random(seed))
            assert g.num_edges == g.num_nodes - 1

    def test_random_tree_reproducible(self):
        a = random_tree(10, random.Random(7))
        b = random_tree(10, random.Random(7))
        assert set(a.edges()) == set(b.edges())

    def test_random_tree_too_small(self):
        with pytest.raises(GraphError):
            random_tree(1, random.Random(0))

    def test_gnp_connected(self):
        for seed in range(5):
            g = random_connected_gnp(20, 0.2, random.Random(seed))
            assert g.num_nodes == 20
            g.validate()

    def test_gnp_low_p_still_connected(self):
        # the fallback path: p so low the raw sample is never connected
        g = random_connected_gnp(30, 0.01, random.Random(1), max_tries=3)
        g.validate()

    def test_gnp_invalid_p(self):
        with pytest.raises(GraphError):
            random_connected_gnp(5, 1.5, random.Random(0))

    def test_random_regular(self):
        g = random_regular(12, 3, random.Random(2))
        assert all(g.degree(v) == 3 for v in g.nodes())

    def test_random_regular_parity(self):
        with pytest.raises(GraphError):
            random_regular(7, 3, random.Random(0))

    def test_random_regular_degree_too_big(self):
        with pytest.raises(GraphError):
            random_regular(4, 4, random.Random(0))

    def test_random_port_order(self):
        sorted_g = random_connected_gnp(15, 0.4, random.Random(5))
        shuffled = random_connected_gnp(15, 0.4, random.Random(5), port_order="random")
        shuffled.validate()
        assert set(sorted_g.edges()) == set(shuffled.edges())


class TestFamilyRegistry:
    @pytest.mark.parametrize("family", sorted(FAMILY_BUILDERS))
    def test_every_family_builds_and_validates(self, family):
        g = FAMILY_BUILDERS[family](16)
        g.validate()
        assert g.num_nodes >= 3

    @pytest.mark.parametrize("family", sorted(FAMILY_BUILDERS))
    def test_families_reproducible(self, family):
        a = FAMILY_BUILDERS[family](20)
        b = FAMILY_BUILDERS[family](20)
        assert set(a.edges()) == set(b.edges())

    def test_family_sizes_scale(self):
        for family in sorted(FAMILY_BUILDERS):
            small = FAMILY_BUILDERS[family](16).num_nodes
            large = FAMILY_BUILDERS[family](64).num_nodes
            assert large > small


class TestExtraFamilies:
    def test_lollipop(self):
        from repro.network import lollipop_graph

        g = lollipop_graph(5, 4)
        assert g.num_nodes == 9
        assert g.num_edges == 5 * 4 // 2 + 4
        g.validate()

    def test_lollipop_tail_source(self):
        from repro.network import lollipop_graph

        g = lollipop_graph(4, 3, source_in_clique=False)
        assert g.degree(g.source) == 1

    def test_lollipop_invalid(self):
        from repro.network import lollipop_graph

        with pytest.raises(GraphError):
            lollipop_graph(2, 1)

    def test_barbell(self):
        from repro.network import barbell_graph

        g = barbell_graph(4, 2)
        assert g.num_nodes == 10
        g.validate()

    def test_barbell_invalid(self):
        from repro.network import barbell_graph

        with pytest.raises(GraphError):
            barbell_graph(2, 0)

    def test_wheel(self):
        from repro.network import wheel_graph

        g = wheel_graph(8)
        assert g.num_nodes == 8
        assert g.degree(0) == 7  # hub
        g.validate()

    def test_wheel_center_source(self):
        from repro.network import wheel_graph

        assert wheel_graph(6, center_source=True).source == 0

    def test_wheel_invalid(self):
        from repro.network import wheel_graph

        with pytest.raises(GraphError):
            wheel_graph(3)

    def test_caterpillar(self):
        from repro.network import caterpillar_graph

        g = caterpillar_graph(4, 2)
        assert g.num_nodes == 4 + 8
        assert g.num_edges == 3 + 8
        g.validate()

    def test_caterpillar_no_legs(self):
        from repro.network import caterpillar_graph

        g = caterpillar_graph(5, 0)
        assert g.num_nodes == 5

    def test_caterpillar_invalid(self):
        from repro.network import caterpillar_graph

        with pytest.raises(GraphError):
            caterpillar_graph(1, 2)

    @pytest.mark.parametrize("family", ("lollipop", "barbell", "wheel", "caterpillar"))
    def test_new_families_run_both_theorems(self, family):
        from repro.algorithms import SchemeB, TreeWakeup
        from repro.core import run_broadcast, run_wakeup
        from repro.oracles import LightTreeBroadcastOracle, SpanningTreeWakeupOracle

        g = FAMILY_BUILDERS[family](20)
        w = run_wakeup(g, SpanningTreeWakeupOracle(), TreeWakeup())
        b = run_broadcast(g, LightTreeBroadcastOracle(), SchemeB())
        assert w.success and w.messages == g.num_nodes - 1
        assert b.success and b.messages <= 2 * (g.num_nodes - 1)


class TestSeededRandomBuilders:
    """Random builders take an explicit rng or seed — never module state."""

    def test_seed_parameter_reproduces_exactly(self):
        from repro.network import to_json

        for builder in (
            lambda **kw: random_tree(12, **kw),
            lambda **kw: random_connected_gnp(12, 0.4, **kw),
            lambda **kw: random_regular(10, 3, **kw),
        ):
            assert to_json(builder(seed=77)) == to_json(builder(seed=77))

    def test_seed_is_equivalent_to_explicit_rng(self):
        from repro.network import to_json

        assert to_json(random_tree(15, seed=5)) == to_json(
            random_tree(15, random.Random(5))
        )

    def test_default_seed_makes_bare_calls_deterministic(self):
        from repro.network import to_json

        assert to_json(random_tree(9)) == to_json(random_tree(9))

    def test_family_builder_seeds_are_backward_compatible(self):
        # The historical per-n seeds (10_000 + n etc.) must keep producing
        # the exact same graphs now that they are passed as seed=.
        from repro.network import to_json

        assert to_json(FAMILY_BUILDERS["random_tree"](14)) == to_json(
            random_tree(14, random.Random(10_014))
        )
        assert to_json(FAMILY_BUILDERS["gnp_dense"](12)) == to_json(
            random_connected_gnp(12, 0.5, random.Random(30_012))
        )

    def test_construction_samplers_accept_seed(self):
        from repro.network import sample_clique_choices, sample_edge_tuple

        assert sample_edge_tuple(8, 5, seed=3) == sample_edge_tuple(8, 5, seed=3)
        assert sample_edge_tuple(8, 5, seed=3) == sample_edge_tuple(
            8, 5, random.Random(3)
        )
        assert sample_clique_choices(4, 4, seed=9) == sample_clique_choices(
            4, 4, seed=9
        )

    def test_clique_family_graph_accepts_seed(self):
        from repro.network import clique_family_graph, to_json

        g1, s1, c1 = clique_family_graph(12, 4, seed=21)
        g2, s2, c2 = clique_family_graph(12, 4, seed=21)
        assert (s1, c1) == (s2, c2)
        assert to_json(g1) == to_json(g2)
