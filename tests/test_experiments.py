"""Tests for the E1-E8 experiment registry.

Each experiment must run, produce rows, and report the paper-shaped
findings.  Sizes are trimmed for test speed; the benchmarks run the
defaults.
"""

import pytest

from repro.analysis import (
    EXPERIMENTS,
    format_experiment,
    run_experiment,
)

SMALL = (8, 16, 32)
FAMS = ("path", "complete", "gnp_sparse")


class TestRegistry:
    def test_all_ids_present(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 16)}

    def test_unknown_id(self):
        with pytest.raises(ValueError):
            run_experiment("E99")

    def test_case_insensitive(self):
        r = run_experiment("e3", sizes=SMALL, families=FAMS)
        assert r.experiment == "E3"


class TestE1:
    def test_shapes_hold(self):
        r = run_experiment("E1", sizes=SMALL, families=FAMS)
        assert r.rows
        for row in r.rows:
            assert row["success"]
            assert row["messages"] == row["n-1"]
            assert row["oracle_bits"] <= row["bound_bits"]

    def test_findings_mention_fit(self):
        r = run_experiment("E1", sizes=(8, 16, 32, 64), families=("complete",))
        assert any("best fit" in f for f in r.findings)


class TestE2:
    def test_all_parts_ok(self):
        r = run_experiment("E2", gadget_sizes=(8, 16), counting_exponents=(10, 16))
        assert all(row["ok"] for row in r.rows)
        parts = {row["part"] for row in r.rows}
        assert parts == {"adversary", "gadget-upper", "zero-advice", "truncation", "counting"}


class TestE3:
    def test_bound_holds_everywhere(self):
        r = run_experiment("E3", sizes=SMALL, families=FAMS)
        assert all(row["ok"] for row in r.rows)
        assert all(row["light_tree"] <= row["4n_bound"] for row in r.rows)


class TestE4:
    def test_shapes_hold(self):
        r = run_experiment("E4", sizes=SMALL, families=FAMS)
        for row in r.rows:
            assert row["success"]
            assert row["messages"] <= row["2(n-1)"]
            assert row["oracle_bits"] <= row["8n_bound"]
            assert row["M_msgs"] == row["n"] - 1


class TestE5:
    def test_all_parts_ok(self):
        r = run_experiment("E5", n=16, k=4, counting_pairs=((2**16, 4),))
        assert all(row["ok"] for row in r.rows)


class TestE6:
    def test_separation_direction(self):
        r = run_experiment("E6", sizes=(16, 32, 64, 128))
        ratios = [row["ratio"] for row in r.rows]
        assert ratios == sorted(ratios)
        assert any("n log n" in f for f in r.findings)

    def test_other_family(self):
        r = run_experiment("E6", sizes=(16, 32, 64), family="gnp_sparse")
        assert r.rows


class TestE7:
    def test_all_ok(self):
        r = run_experiment(
            "E7", n=24, families=("complete",), schedulers=("sync", "random")
        )
        assert all(row["wakeup_ok"] and row["bcast_ok"] for row in r.rows)
        assert all(row["payloads"] <= 2 for row in r.rows)


class TestE8:
    def test_all_ok(self):
        r = run_experiment("E8", exponents=(8, 12), subdivided_factors=(1, 2))
        assert all(row["ok"] for row in r.rows)


class TestFormatting:
    def test_format_includes_findings(self):
        r = run_experiment("E3", sizes=(8, 16), families=("path",))
        text = format_experiment(r)
        assert "[E3]" in text
        assert "*" in text


class TestE9:
    def test_tradeoff_monotone(self):
        r = run_experiment("E9", n=25, families=("grid",))
        assert all(row["success"] for row in r.rows)
        msgs = [row["messages"] for row in r.rows]
        assert msgs == sorted(msgs, reverse=True)
        assert msgs[-1] == r.rows[-1]["n-1"]

    def test_extension_flagged(self):
        r = run_experiment("E9", n=16, families=("complete",))
        assert "Extension" in r.title


class TestE10:
    def test_gossip_shapes(self):
        r = run_experiment("E10", sizes=(8, 16), families=("complete", "random_tree"))
        assert all(row["tree_ok"] and row["flood_ok"] for row in r.rows)
        assert all(row["tree_msgs"] == row["2(n-1)"] for row in r.rows)
        assert all(row["flood_msgs"] >= row["tree_msgs"] for row in r.rows)


class TestE11:
    def test_construction_shapes(self):
        r = run_experiment("E11", sizes=(8, 16), families=("complete", "grid"))
        assert all(row["advised_ok"] and row["dfs_ok"] for row in r.rows)
        assert all(row["advised_msgs"] == 0 for row in r.rows)
        assert all(row["dfs_msgs"] > 0 for row in r.rows)


class TestE12:
    def test_election_shapes(self):
        r = run_experiment("E12", sizes=(8, 16), families=("complete", "cycle"))
        regular = [row for row in r.rows if row["family"] != "ring/anonymous"]
        anon = [row for row in r.rows if row["family"] == "ring/anonymous"]
        assert all(row["advised_ok"] and row["minid_ok"] for row in regular)
        assert all(row["1bit_msgs"] == 0 for row in regular)
        assert anon and all(row["minid_ok"] is False for row in anon)


class TestE13:
    def test_exploration_shapes(self):
        r = run_experiment("E13", sizes=(8, 16), families=("complete", "grid"))
        assert all(row["advised_ok"] and row["dfs_ok"] for row in r.rows)
        assert all(row["advised_moves"] == row["2(n-1)"] for row in r.rows)
        assert all(row["rotor_covered"] for row in r.rows)


class TestE14:
    def test_time_shapes(self):
        r = run_experiment("E14", n=24, families=("cycle", "complete"))
        assert all(row["bfs_ok"] and row["dfs_ok"] for row in r.rows)
        assert all(row["bfs_rounds"] <= row["flood_rounds"] for row in r.rows)
        assert all(row["dfs_rounds"] >= row["bfs_rounds"] for row in r.rows)
        complete = next(row for row in r.rows if row["family"] == "complete")
        assert complete["dfs_rounds"] == 23  # path-shaped DFS tree on K_n
        assert complete["bfs_rounds"] == 1
