#!/usr/bin/env python
"""Oracle size as a general difficulty measure: election, construction,
exploration.

The paper's introduction lists leader election among the problems whose
solvability depends on knowledge, and its conclusion conjectures the
oracle-size measure extends to construction problems and to exploration by
mobile agents.  This example runs all three, showing how differently they
price out:

* **election** costs ONE advice bit (and zero messages) — or Theta(n*m)
  messages with identifiers — or is flatly impossible anonymously on a
  symmetric ring;
* **spanning-tree construction** costs ~n log(deg) bits and zero messages,
  or zero bits and Theta(m) messages;
* **exploration** with tree advice takes a *memoryless* agent exactly
  2(n-1) moves, halting included; without advice the agent needs memory
  and Theta(m) moves, and a blind rotor-router cannot even tell when it is
  done.

Run:  python examples/beyond_dissemination.py
"""

from repro import (
    AdvisedElection,
    AdvisedTreeConstruction,
    DFSTreeConstruction,
    GossipTreeOracle,
    MinIdElection,
    NullOracle,
    ParentPointerOracle,
    complete_graph_star,
    cycle_graph,
    run_election,
    run_tree_construction,
)
from repro.agent import (
    AdvisedTreeExplorer,
    DFSExplorer,
    RotorRouterExplorer,
    run_exploration,
)
from repro.oracles import LeaderBitOracle


def election_demo() -> None:
    print("=== Leader election ===")
    g = complete_graph_star(32)
    one_bit = run_election(g, LeaderBitOracle(), AdvisedElection())
    min_id = run_election(g, NullOracle(), MinIdElection())
    print(f"1-bit oracle : {one_bit.oracle_bits} bit, {one_bit.messages} messages "
          f"-> {one_bit.leaders} leader")
    print(f"min-id flood : {min_id.oracle_bits} bits, {min_id.messages} messages "
          f"-> {min_id.leaders} leader (needs unique ids)")
    ring = cycle_graph(8)
    anon = run_election(ring, NullOracle(), MinIdElection(), anonymous=True)
    print(f"anonymous symmetric ring, zero advice: {anon.leaders} 'leaders' "
          f"(all self-elected) -> IMPOSSIBLE deterministically")
    fixed = run_election(ring, LeaderBitOracle(), AdvisedElection(), anonymous=True)
    print(f"same ring, ONE advice bit: {fixed.leaders} leader -> solved\n")


def construction_demo() -> None:
    print("=== Spanning-tree construction ===")
    g = complete_graph_star(32)
    advised = run_tree_construction(g, ParentPointerOracle(), AdvisedTreeConstruction())
    dfs = run_tree_construction(g, NullOracle(), DFSTreeConstruction())
    print(f"parent-pointer oracle: {advised.oracle_bits} bits, "
          f"{advised.messages} messages, tree valid: {advised.valid_tree}")
    print(f"DFS token            : 0 bits, {dfs.messages} messages "
          f"(m = {g.num_edges}), tree valid: {dfs.valid_tree}\n")


def exploration_demo() -> None:
    print("=== Exploration by a mobile agent ===")
    g = complete_graph_star(32)
    n, m = g.num_nodes, g.num_edges
    advised = run_exploration(g, GossipTreeOracle(), AdvisedTreeExplorer())
    dfs = run_exploration(g, NullOracle(), DFSExplorer())
    budget = 2 * m * n
    rotor = run_exploration(
        g, NullOracle(), RotorRouterExplorer(budget=budget), max_moves=budget + 1
    )
    print(f"tree advice, NO agent memory: {advised.moves} moves (= 2(n-1)), halts")
    print(f"no advice, agent memory     : {dfs.moves} moves (Theta(m); m = {m}), halts")
    print(f"no advice, no memory (rotor): covered all {rotor.visited} nodes in "
          f"{rotor.moves} moves but cannot know it is done")
    print("\nEven the ability to HALT is knowledge about the network.")


def main() -> None:
    election_demo()
    construction_demo()
    exploration_demo()


if __name__ == "__main__":
    main()
