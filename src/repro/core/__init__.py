"""Core abstractions: oracles, schemes/algorithms, task runners, separation."""

from .audit import AuditFailure, AuditMismatch, AuditReport, replay_audit
from .construction import TreeConstructionResult, run_tree_construction, verify_parent_outputs
from .election import FOLLOWER, LEADER, ElectionResult, run_election
from .gossip import GOSSIP_KIND, GossipResult, rumor_of, run_gossip
from .oracle import AdviceMap, advice_from_json, advice_to_json, FullMapOracle, NullOracle, Oracle, TruncatingOracle
from .scheme import Algorithm, FunctionalAlgorithm, FunctionalScheme, History, sends
from .separation import SeparationPoint, separation_point, separation_profile
from .tasks import TaskResult, default_message_limit, run_broadcast, run_wakeup

__all__ = [
    "LEADER",
    "FOLLOWER",
    "ElectionResult",
    "run_election",
    "AuditFailure",
    "AuditReport",
    "AuditMismatch",
    "replay_audit",
    "TreeConstructionResult",
    "run_tree_construction",
    "verify_parent_outputs",
    "GOSSIP_KIND",
    "GossipResult",
    "rumor_of",
    "run_gossip",
    "Oracle",
    "AdviceMap",
    "advice_to_json",
    "advice_from_json",
    "NullOracle",
    "FullMapOracle",
    "TruncatingOracle",
    "Algorithm",
    "History",
    "FunctionalScheme",
    "FunctionalAlgorithm",
    "sends",
    "TaskResult",
    "run_broadcast",
    "run_wakeup",
    "default_message_limit",
    "SeparationPoint",
    "separation_point",
    "separation_profile",
]
