"""Tests for the pre-registered verdict harness (repro.verdict + CLI).

The expensive part — running experiments — happens once per module in the
``seed_results`` fixture; every evaluator/CLI/log test reads from it.  The
planted-tamper tests are the point of the harness: bending E6's wakeup
series to linear must flip the verdict to REFUTED and the CLI to exit 1.
"""

import copy
import json
import os

import pytest

from repro.analysis import EXPERIMENTS, run_experiment
from repro.cli import main
from repro.obs import MetricsRegistry, VerdictRendered, apply_event
from repro.runner.core import experiment_result_to_dict
from repro.verdict import (
    CONFIRMED,
    CRITERIA,
    INCONCLUSIVE,
    MARKER,
    PROFILES,
    REFUTED,
    SCHEMA,
    append_research_log,
    evaluate_experiment,
    evaluate_results,
    render_markdown_table,
    report_to_dict,
    report_to_json,
)

SEED_IDS = ("E1", "E3", "E6", "E8")


@pytest.fixture(scope="module")
def seed_results():
    return {eid: run_experiment(eid) for eid in SEED_IDS}


@pytest.fixture(scope="module")
def seed_report(seed_results):
    return evaluate_results(seed_results, experiments=SEED_IDS)


class TestRegistry:
    def test_every_experiment_is_pre_registered(self):
        assert set(CRITERIA) == set(EXPERIMENTS)

    def test_criteria_name_their_experiment(self):
        for eid, criterion in CRITERIA.items():
            assert criterion.experiment == eid
            assert criterion.theorem and criterion.hypothesis and criterion.lesson
            assert criterion.checks, f"{eid} registers no checks"

    def test_profiles(self):
        assert set(PROFILES) == {"default", "full"}
        assert PROFILES["default"] == {}
        assert set(PROFILES["full"]) <= set(CRITERIA)


class TestEvaluator:
    def test_committed_seeds_confirm(self, seed_report):
        assert {v.status for v in seed_report.verdicts} == {CONFIRMED}
        assert seed_report.refuted == 0
        assert seed_report.exit_code == 0
        for v in seed_report.verdicts:
            assert all(c.status == CONFIRMED for c in v.checks)

    def test_growth_check_reports_numbers(self, seed_report):
        e6 = next(v for v in seed_report.verdicts if v.experiment == "E6")
        wakeup = next(c for c in e6.checks if "wakeup advice" in c.claim)
        assert "n log n" in wakeup.measured and "R^2" in wakeup.measured
        assert "rel.err <= 0.05" in wakeup.predicted

    def test_missing_result_is_inconclusive_not_refuted(self):
        report = evaluate_results({}, experiments=["E5"])
        (verdict,) = report.verdicts
        assert verdict.status == INCONCLUSIVE
        assert verdict.note == "experiment not run"
        assert report.exit_code == 0

    def test_unregistered_id_raises(self):
        with pytest.raises(ValueError, match="E99"):
            evaluate_results({}, experiments=["E99"])

    def test_verdicts_sorted_numerically(self, seed_results):
        report = evaluate_results(seed_results, experiments=["E8", "E1", "E3"])
        assert [v.experiment for v in report.verdicts] == ["E1", "E3", "E8"]

    def test_degraded_rows_block_confirmation(self, seed_results):
        rows = copy.deepcopy(seed_results["E8"].rows)
        rows.append({"failed": True, "error": "ValueError", "detail": "boom"})
        verdict = evaluate_experiment(CRITERIA["E8"], {"rows": rows})
        assert verdict.status == INCONCLUSIVE
        assert "degraded" in verdict.note


def tampered_e6_rows(result):
    """E6's rows with the wakeup series bent to linear (3n) growth."""
    rows = copy.deepcopy(result.rows)
    for row in rows:
        row["wakeup_bits"] = 3 * row["n"]
        row["ratio"] = row["wakeup_bits"] / row["broadcast_bits"]
    return rows


class TestPlantedTamper:
    def test_linear_wakeup_refutes_e6(self, seed_results):
        verdict = evaluate_experiment(
            CRITERIA["E6"], {"rows": tampered_e6_rows(seed_results["E6"])}
        )
        assert verdict.status == REFUTED
        wakeup = next(c for c in verdict.checks if "wakeup advice" in c.claim)
        assert wakeup.status == REFUTED
        assert "* n (" in wakeup.measured  # the linear model won the race

    def test_tampered_run_dir_fails_cli(self, seed_results, tmp_path, capsys):
        """The CI gate end-to-end: a bent curve in results.json exits 1."""
        serialized = experiment_result_to_dict(seed_results["E6"])
        serialized["rows"] = tampered_e6_rows(seed_results["E6"])
        run_dir = tmp_path / "run-tampered"
        run_dir.mkdir()
        (run_dir / "results.json").write_text(json.dumps({"E6": serialized}))
        assert main(["verdict", "E6", "--results", str(run_dir), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["refuted"] == 1
        assert report["verdicts"][0]["status"] == REFUTED

    def test_untampered_run_dir_confirms(self, seed_results, tmp_path, capsys):
        run_dir = tmp_path / "run-clean"
        run_dir.mkdir()
        payload = {"E6": experiment_result_to_dict(seed_results["E6"])}
        (run_dir / "results.json").write_text(json.dumps(payload))
        assert main(["verdict", "E6", "--results", str(run_dir)]) == 0
        assert "replay" in capsys.readouterr().out


class TestReportFormats:
    def test_json_schema_and_roundtrip(self, seed_report):
        document = report_to_dict(seed_report)
        assert document["schema"] == SCHEMA
        assert document["confirmed"] == len(SEED_IDS)
        assert document == json.loads(report_to_json(seed_report))

    def test_json_is_deterministic(self, seed_report):
        assert report_to_json(seed_report) == report_to_json(seed_report)

    def test_markdown_table(self, seed_report):
        text = render_markdown_table(seed_report)
        assert "| Experiment | Theorem | Verdict | Checks |" in text
        for eid in SEED_IDS:
            assert f"## {eid} — CONFIRMED" in text
        assert "- [x]" in text and "- [ ]" not in text


class TestResearchLog:
    def test_creates_file_with_marker(self, seed_report, tmp_path):
        path = str(tmp_path / "RESEARCH_LOG.md")
        added = append_research_log(seed_report, path)
        assert added == len(SEED_IDS)
        text = open(path).read()
        assert MARKER in text
        assert "E6 CONFIRMED" in text

    def test_idempotent_rerun(self, seed_report, tmp_path):
        path = str(tmp_path / "RESEARCH_LOG.md")
        append_research_log(seed_report, path)
        before = open(path).read()
        assert append_research_log(seed_report, path) == 0
        assert open(path).read() == before

    def test_new_entries_land_newest_first(self, seed_results, tmp_path):
        path = str(tmp_path / "RESEARCH_LOG.md")
        old = evaluate_results(seed_results, experiments=["E8"])
        new = evaluate_results(seed_results, experiments=["E1"], profile="full")
        append_research_log(old, path)
        append_research_log(new, path)
        text = open(path).read()
        assert text.index("E1 CONFIRMED") < text.index("E8 CONFIRMED")
        assert text.index(MARKER) < text.index("E1 CONFIRMED")

    def test_entries_carry_no_timestamps(self, seed_report, tmp_path):
        path = str(tmp_path / "RESEARCH_LOG.md")
        append_research_log(seed_report, path)
        assert "202" not in open(path).read()  # no years, no dates


class TestObsIntegration:
    def test_apply_event_counts_verdicts(self):
        reg = MetricsRegistry()
        apply_event(
            reg,
            VerdictRendered(
                experiment="E6", status="CONFIRMED", confirmed=4, refuted=0, inconclusive=0
            ),
        )
        apply_event(
            reg,
            VerdictRendered(
                experiment="E2", status="REFUTED", confirmed=3, refuted=2, inconclusive=1
            ),
        )
        snap = {name: rec["value"] for name, rec in reg.snapshot().items()}
        assert snap["verdicts"] == 2
        assert snap["verdicts_confirmed"] == 1
        assert snap["verdicts_refuted"] == 1
        assert snap["verdict_checks_confirmed"] == 7
        assert snap["verdict_checks_refuted"] == 2
        assert snap["verdict_checks_inconclusive"] == 1


class TestCLI:
    def test_live_subset_confirms(self, capsys):
        assert main(["verdict", "E3", "E8"]) == 0
        out = capsys.readouterr().out
        assert "# Verdicts (default grid, live)" in out
        assert "REFUTED" not in out.replace("REFUTED 0", "")

    def test_json_output(self, capsys):
        assert main(["verdict", "E8", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == SCHEMA
        assert report["verdicts"][0]["experiment"] == "E8"

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["verdict", "E99"]) == 2
        assert "no pre-registered criteria" in capsys.readouterr().err

    def test_unknown_profile_exits_2(self, capsys):
        assert main(["verdict", "E8", "--profile", "huge"]) == 2
        assert "unknown profile" in capsys.readouterr().err

    def test_missing_results_dir_exits_2(self, tmp_path, capsys):
        assert main(["verdict", "E8", "--results", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_artifacts_and_log(self, tmp_path, capsys):
        json_out = str(tmp_path / "verdict.json")
        md_out = str(tmp_path / "verdict.md")
        log = str(tmp_path / "RESEARCH_LOG.md")
        trace = str(tmp_path / "events.jsonl")
        assert (
            main(
                [
                    "verdict",
                    "E8",
                    "--json-out",
                    json_out,
                    "--md-out",
                    md_out,
                    "--log",
                    log,
                    "--trace",
                    trace,
                ]
            )
            == 0
        )
        assert json.load(open(json_out))["schema"] == SCHEMA
        assert "| Experiment |" in open(md_out).read()
        assert MARKER in open(log).read()
        events = [json.loads(line) for line in open(trace) if line.strip()]
        assert any(e.get("event") == "verdict_rendered" for e in events)

    def test_not_run_warns_but_passes(self, seed_results, tmp_path, capsys):
        run_dir = tmp_path / "run-partial"
        run_dir.mkdir()
        payload = {"E8": experiment_result_to_dict(seed_results["E8"])}
        (run_dir / "results.json").write_text(json.dumps(payload))
        assert main(["verdict", "E8", "E5", "--results", str(run_dir)]) == 0
        err = capsys.readouterr().err
        assert "E5 INCONCLUSIVE" in err and "not run" in err
