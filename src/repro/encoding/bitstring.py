"""Immutable bit strings.

The paper models oracle advice as elements of ``{0, 1}*``: finite binary
strings assigned to nodes.  :class:`BitString` is the library-wide value type
for such strings.  It is immutable, hashable, cheap to concatenate and slice,
and backed by a Python integer (MSB-first), so a million-bit advice string
costs a couple of hundred kilobytes rather than a tuple of objects.

:class:`BitReader` provides sequential decoding on top of a
:class:`BitString`; every codec in :mod:`repro.encoding.codes` consumes bits
through it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

__all__ = ["BitString", "BitReader"]

_BitsLike = Union["BitString", Iterable[int], str, bytes, bytearray]

#: Maps byte value 0 -> '0' and 1 -> '1' so a ``bytes`` of raw bit values
#: can be handed to ``int(..., 2)`` in one C-level pass.
_BYTES_TO_01 = bytes(
    (0x30 + b) if b in (0, 1) else 0xFF for b in range(256)
)


class BitString:
    """An immutable sequence of bits.

    Bits are stored MSB-first in an internal integer together with an
    explicit length, so leading zero bits are preserved (``BitString("0001")``
    has length 4).

    Construction accepts another :class:`BitString`, an iterable of ``0``/``1``
    integers (including ``bytes`` of raw 0/1 values), or a string of
    ``'0'``/``'1'`` characters; strings and bytes are parsed in one
    C-level ``int(s, 2)`` pass rather than bit by bit::

        >>> BitString("1010")
        BitString('1010')
        >>> BitString([1, 0]) + BitString("11")
        BitString('1011')
    """

    __slots__ = ("_value", "_length")

    def __init__(self, bits: _BitsLike = ()) -> None:
        if isinstance(bits, BitString):
            self._value = bits._value
            self._length = bits._length
            return
        if isinstance(bits, str):
            # int(s, 2) parses the whole string in C; reject anything that
            # is not strictly '0'/'1' first (int() would accept '_', '+',
            # whitespace, and an '0b' prefix).
            if bits.count("0") + bits.count("1") != len(bits):
                bad = next(ch for ch in bits if ch not in "01")
                raise ValueError(f"invalid character {bad!r} in bit string")
            self._value = int(bits, 2) if bits else 0
            self._length = len(bits)
            return
        if isinstance(bits, (bytes, bytearray)):
            data = bytes(bits)
            if data.count(0) + data.count(1) != len(data):
                bad = next(b for b in data if b not in (0, 1))
                raise ValueError(f"invalid bit {bad!r}; expected 0 or 1")
            self._value = int(data.translate(_BYTES_TO_01), 2) if data else 0
            self._length = len(data)
            return
        value = 0
        length = 0
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"invalid bit {bit!r}; expected 0 or 1")
            value = (value << 1) | bit
            length += 1
        self._value = value
        self._length = length

    # ------------------------------------------------------------------
    # Alternate constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_int(cls, value: int, width: int) -> "BitString":
        """The ``width``-bit big-endian representation of ``value``.

        Raises :class:`ValueError` if ``value`` does not fit in ``width``
        bits or is negative.
        """
        if value < 0:
            raise ValueError("value must be non-negative")
        if width < 0:
            raise ValueError("width must be non-negative")
        if value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        out = cls.__new__(cls)
        out._value = value
        out._length = width
        return out

    @classmethod
    def empty(cls) -> "BitString":
        """The empty string (the advice the oracle gives to leaves)."""
        return _EMPTY

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[int]:
        length = self._length
        value = self._value
        for i in range(length - 1, -1, -1):
            yield (value >> i) & 1

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            if step == 1:
                width = max(0, stop - start)
                if width == 0:
                    return _EMPTY
                shifted = self._value >> (self._length - stop)
                return BitString.from_int(shifted & ((1 << width) - 1), width)
            return BitString([self[i] for i in range(start, stop, step)])
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("bit index out of range")
        return (self._value >> (self._length - 1 - index)) & 1

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def __add__(self, other: "BitString") -> "BitString":
        if not isinstance(other, BitString):
            return NotImplemented
        out = BitString.__new__(BitString)
        out._value = (self._value << other._length) | other._value
        out._length = self._length + other._length
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitString):
            return NotImplemented
        return self._value == other._value and self._length == other._length

    def __hash__(self) -> int:
        return hash((self._value, self._length))

    def to_int(self) -> int:
        """Interpret the whole string as a big-endian integer."""
        return self._value

    def to01(self) -> str:
        """Render as a string of ``'0'``/``'1'`` characters."""
        if self._length == 0:
            return ""
        return format(self._value, f"0{self._length}b")

    def __repr__(self) -> str:
        return f"BitString('{self.to01()}')"

    @staticmethod
    def concat(parts: Iterable["BitString"]) -> "BitString":
        """Concatenate many bit strings efficiently."""
        value = 0
        length = 0
        for part in parts:
            value = (value << part._length) | part._value
            length += part._length
        out = BitString.__new__(BitString)
        out._value = value
        out._length = length
        return out

    def join(self, parts: Iterable["BitString"]) -> "BitString":
        """Concatenate ``parts`` with this string between consecutive parts.

        ``BitString.empty().join(parts)`` is plain concatenation — the
        O(total) integer-shift alternative to ``reduce(add, parts)``'s
        O(total²) repeated copying, mirroring ``str.join``.
        """
        sep_value = self._value
        sep_length = self._length
        value = 0
        length = 0
        first = True
        for part in parts:
            if first:
                first = False
            elif sep_length:
                value = (value << sep_length) | sep_value
                length += sep_length
            value = (value << part._length) | part._value
            length += part._length
        out = BitString.__new__(BitString)
        out._value = value
        out._length = length
        return out


_EMPTY = BitString()


class BitReader:
    """Sequential reader over a :class:`BitString`.

    Decoders pull bits through a reader so that several codewords can be
    concatenated in one advice string and decoded in order — exactly how the
    paper's oracles pack information.
    """

    __slots__ = ("_bits", "_pos")

    def __init__(self, bits: BitString) -> None:
        self._bits = BitString(bits)
        self._pos = 0

    @property
    def position(self) -> int:
        """Number of bits consumed so far."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of bits not yet consumed."""
        return len(self._bits) - self._pos

    def exhausted(self) -> bool:
        """True when every bit has been consumed."""
        return self.remaining == 0

    def peek_bit(self) -> int:
        """Return the next bit without consuming it."""
        if self.remaining == 0:
            raise EOFError("no bits left to peek")
        return self._bits[self._pos]

    def read_bit(self) -> int:
        """Consume and return a single bit."""
        if self.remaining == 0:
            raise EOFError("no bits left to read")
        bit = self._bits[self._pos]
        self._pos += 1
        return bit

    def read(self, width: int) -> BitString:
        """Consume ``width`` bits and return them as a :class:`BitString`."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if width > self.remaining:
            raise EOFError(f"requested {width} bits, only {self.remaining} left")
        out = self._bits[self._pos : self._pos + width]
        self._pos += width
        return out

    def read_int(self, width: int) -> int:
        """Consume ``width`` bits and return their big-endian integer value."""
        return self.read(width).to_int()

    def read_rest(self) -> BitString:
        """Consume and return all remaining bits."""
        return self.read(self.remaining)
