"""Event sinks: where the structured stream goes.

A sink is anything with ``enabled``, ``emit(event)``, and ``close()``.
Three are provided:

* :class:`NullSink` — the default everywhere; ``enabled`` is False, so hot
  paths skip event *construction* entirely (one attribute check per
  operation is the whole overhead budget).
* :class:`MemorySink` — collects events in a list; what the tests and the
  in-process consumers use.
* :class:`JSONLSink` — one compact JSON object per line, keys sorted, no
  timestamps: byte-identical across same-seed runs (see
  :mod:`repro.obs.events` for why).

:class:`TeeSink` fans one stream out to several sinks.
"""

from __future__ import annotations

import json
from typing import IO, Any, List, Optional, Protocol, runtime_checkable

from .events import Event

__all__ = ["EventSink", "NullSink", "MemorySink", "JSONLSink", "TeeSink", "encode_event"]


def encode_event(event: Event) -> str:
    """The canonical JSONL encoding: compact separators, sorted keys."""
    return json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))


@runtime_checkable
class EventSink(Protocol):
    """Structural interface every sink satisfies."""

    enabled: bool

    def emit(self, event: Event) -> None:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class NullSink:
    """Discard everything; ``enabled=False`` lets emitters skip event
    construction altogether."""

    enabled = False

    def emit(self, event: Event) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Keep every event in :attr:`events`, in emission order."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JSONLSink:
    """Append events to ``path`` (or a file-like object), one JSON per line.

    Usable as a context manager; :meth:`close` is idempotent and leaves
    externally supplied streams open.
    """

    enabled = True

    def __init__(self, path_or_stream: Any) -> None:
        if hasattr(path_or_stream, "write"):
            self._stream: Optional[IO[str]] = path_or_stream
            self._owns = False
            self.path: Optional[str] = getattr(path_or_stream, "name", None)
        else:
            self.path = str(path_or_stream)
            self._stream = open(self.path, "w", encoding="utf-8")
            self._owns = True
        self.count = 0

    def emit(self, event: Event) -> None:
        if self._stream is None:
            raise ValueError("JSONLSink is closed")
        self._stream.write(encode_event(event))
        self._stream.write("\n")
        self.count += 1

    def close(self) -> None:
        stream, self._stream = self._stream, None
        if stream is not None:
            if self._owns:
                stream.close()
            else:
                stream.flush()

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TeeSink:
    """Deliver each event to every child sink (enabled iff any child is)."""

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks = tuple(sinks)
        self.enabled = any(s.enabled for s in self.sinks)

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            if sink.enabled:
                sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
