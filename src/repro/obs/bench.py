"""Bench-results emitter: pytest-benchmark JSON → ``BENCH_obs.json``.

``pytest benchmarks/ --benchmark-json=raw.json`` writes a large
machine-specific document.  :func:`convert_benchmark_json` distills it to
the stable facts a perf trajectory needs — per-benchmark timing stats and
the experiment ``extra_info`` the bench files attach — and
:func:`emit_bench_obs` writes that as the committed ``BENCH_obs.json``.
The CI smoke job runs one bench file through this on every push, so the
repository's perf record is data, not folklore.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = ["convert_benchmark_json", "emit_bench_obs", "BENCH_SCHEMA"]

#: Schema tag written into every emitted document.
BENCH_SCHEMA = "repro-bench/1"

#: The pytest-benchmark stats fields worth keeping, in output order.
_STAT_FIELDS = ("min", "max", "mean", "stddev", "median", "rounds", "iterations")


def convert_benchmark_json(data: Dict[str, Any]) -> Dict[str, Any]:
    """Distill a loaded pytest-benchmark document to the committed shape."""
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ValueError("not a pytest-benchmark JSON document (no 'benchmarks' list)")
    rows: List[Dict[str, Any]] = []
    for bench in sorted(benchmarks, key=lambda b: str(b.get("fullname", b.get("name")))):
        stats = bench.get("stats", {})
        row: Dict[str, Any] = {
            "name": bench.get("name"),
            "group": bench.get("group"),
        }
        for field in _STAT_FIELDS:
            if field in stats:
                key = field if field in ("rounds", "iterations") else f"{field}_s"
                row[key] = stats[field]
        extra = bench.get("extra_info") or {}
        if extra:
            row["extra_info"] = extra
        rows.append(row)
    machine = data.get("machine_info") or {}
    out: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "pytest_benchmark_version": data.get("version"),
        "machine": {
            key: machine.get(key)
            for key in ("python_version", "python_implementation", "machine", "system")
            if machine.get(key) is not None
        },
        "benchmarks": rows,
    }
    if data.get("datetime"):
        out["datetime"] = data["datetime"]
    return out


def emit_bench_obs(in_path: str, out_path: str = "BENCH_obs.json") -> Dict[str, Any]:
    """Convert ``in_path`` (pytest-benchmark JSON) and write ``out_path``.

    Returns the emitted document.  Output is pretty-printed with sorted
    keys so committed diffs stay reviewable.
    """
    with open(in_path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    converted = convert_benchmark_json(data)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(converted, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return converted
