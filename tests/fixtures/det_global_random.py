"""Known-bad fixture for DET003: module-level (process-global) randomness."""

import random


def pick(items):
    return items[random.randrange(len(items))]  # hidden global RNG state
