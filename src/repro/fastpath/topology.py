"""Flat-array (CSR-style) compilation of a port-labeled graph.

The legacy engine answers "who is behind port ``p`` of node ``v``, and on
which of *their* ports does the message arrive?" with two nested-dict
walks per delivered message
(``graph.neighbor_via(v, p)`` + ``graph.port(u, v)``).
:class:`CompiledTopology` precomputes both answers for every ``(node,
port)`` pair into flat arrays so the inner loop does two list indexings
instead:

    base = offsets[i]                  # node i's slice of the port space
    j     = neighbor_at[base + p]      # dense index of the neighbor
    aport = arrival_at[base + p]       # arrival port at that neighbor

Nodes are numbered ``0..n-1`` in the graph's deterministic insertion
order (the same order ``graph.nodes()`` yields, which is also the
engine's init order), so a compiled index is meaningful across every
consumer of the same frozen graph.  ``reprs`` additionally precomputes
``repr(label)`` per node — the component of the synchronous delivery key
that is by far the most expensive to recompute per message.

Compilation happens once, at :meth:`PortLabeledGraph.freeze` time, and
the result is cached on the graph itself (``graph._compiled``); a frozen
graph cannot change, so the cache never goes stale.  For sweep drivers,
:meth:`repro.parallel.cache.ConstructionCache.topology` additionally
memoizes topologies by ``(family, n, seed)`` content address.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Tuple

__all__ = ["CompiledTopology", "compile_topology", "compiled_topology"]


class CompiledTopology:
    """The flat-array form of one frozen port-labeled graph.

    Attributes
    ----------
    labels:
        Node labels, dense index -> label (graph insertion order).
    index:
        label -> dense index (the inverse of ``labels``).
    reprs:
        ``repr(label)`` per dense index (synchronous delivery keys).
    degrees:
        ``deg(v)`` per dense index.
    offsets:
        CSR row starts: node ``i`` owns slots ``offsets[i] ..
        offsets[i+1] - 1`` of the two port arrays; ``offsets[n]`` is
        ``2 * num_edges``.
    neighbor_at:
        ``neighbor_at[offsets[i] + p]`` is the dense index of the node
        behind port ``p`` of node ``i``.
    arrival_at:
        ``arrival_at[offsets[i] + p]`` is the port on which that message
        arrives at the neighbor.
    source_index:
        Dense index of the source, or ``-1`` if none is designated.
    """

    __slots__ = (
        "labels",
        "index",
        "reprs",
        "degrees",
        "offsets",
        "neighbor_at",
        "arrival_at",
        "source_index",
    )

    def __init__(
        self,
        labels: Tuple[Hashable, ...],
        index: Dict[Hashable, int],
        reprs: Tuple[str, ...],
        degrees: "array",
        offsets: "array",
        neighbor_at: "array",
        arrival_at: "array",
        source_index: int,
    ) -> None:
        self.labels = labels
        self.index = index
        self.reprs = reprs
        self.degrees = degrees
        self.offsets = offsets
        self.neighbor_at = neighbor_at
        self.arrival_at = arrival_at
        self.source_index = source_index

    @property
    def num_nodes(self) -> int:
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        return len(self.neighbor_at) // 2

    def neighbor_via(self, i: int, port: int) -> int:
        """Dense index of the node behind port ``port`` of node ``i``."""
        if not 0 <= port < self.degrees[i]:
            raise IndexError(f"no port {port} at compiled node {i}")
        return self.neighbor_at[self.offsets[i] + port]

    def arrival_port(self, i: int, port: int) -> int:
        """Arrival port of a message sent through port ``port`` of node ``i``."""
        if not 0 <= port < self.degrees[i]:
            raise IndexError(f"no port {port} at compiled node {i}")
        return self.arrival_at[self.offsets[i] + port]

    def __repr__(self) -> str:
        return f"CompiledTopology(n={self.num_nodes}, m={self.num_edges})"


def compile_topology(graph) -> CompiledTopology:
    """Compile a validated :class:`~repro.network.graph.PortLabeledGraph`.

    Called by ``freeze()``; use :func:`compiled_topology` to get the
    cached instance of an already-frozen graph.
    """
    labels: Tuple[Hashable, ...] = tuple(graph.nodes())
    n = len(labels)
    index = {label: i for i, label in enumerate(labels)}
    degrees = array("l", (graph.degree(v) for v in labels))
    offsets = array("l", [0] * (n + 1))
    total = 0
    for i in range(n):
        total += degrees[i]
        offsets[i + 1] = total
    neighbor_at = array("l", [0] * total)
    arrival_at = array("l", [0] * total)
    for i, v in enumerate(labels):
        base = offsets[i]
        for p in range(degrees[i]):
            u = graph.neighbor_via(v, p)
            neighbor_at[base + p] = index[u]
            arrival_at[base + p] = graph.port(u, v)
    reprs = tuple(repr(v) for v in labels)
    source_index = index[graph.source] if graph.has_source else -1
    return CompiledTopology(
        labels, index, reprs, degrees, offsets, neighbor_at, arrival_at, source_index
    )


def compiled_topology(graph) -> CompiledTopology:
    """The cached :class:`CompiledTopology` of a frozen graph.

    Graphs frozen since this module exists carry their topology already;
    older pickles (or exotic construction paths) get compiled here on
    first use.  Raises :class:`ValueError` for unfrozen graphs — a
    mutable graph could invalidate the cache.
    """
    topo = getattr(graph, "_compiled", None)
    if topo is None:
        if not graph.frozen:
            raise ValueError("compiled_topology requires a frozen graph")
        topo = compile_topology(graph)
        graph._compiled = topo
    return topo
