"""Tests for the mobile-agent substrate and the three explorers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agent import (
    AdvisedTreeExplorer,
    AgentView,
    DFSExplorer,
    ExplorationResult,
    RotorRouterExplorer,
    run_exploration,
)
from repro.core import NullOracle
from repro.encoding import BitString
from repro.network import (
    complete_graph_star,
    cycle_graph,
    grid_graph,
    path_graph,
    random_connected_gnp,
)
from repro.oracles import GossipTreeOracle


class TestRunExploration:
    def test_invalid_start(self, k5):
        with pytest.raises(ValueError):
            run_exploration(k5, NullOracle(), DFSExplorer(), start="nowhere")

    def test_invalid_port_choice(self, k5):
        class Bad:
            def choose_port(self, view):
                return 99

        with pytest.raises(ValueError):
            run_exploration(k5, NullOracle(), Bad())

    def test_immediate_halt(self, k5):
        class Lazy:
            def choose_port(self, view):
                return None

        result = run_exploration(k5, NullOracle(), Lazy())
        assert result.halted
        assert result.moves == 0
        assert result.visited == 1
        assert not result.success

    def test_move_limit(self, k5):
        class Spinner:
            def choose_port(self, view):
                return 0

        result = run_exploration(k5, NullOracle(), Spinner(), max_moves=10)
        assert not result.halted
        assert result.moves == 10

    def test_trail_recorded(self, path4):
        result = run_exploration(path4, NullOracle(), DFSExplorer())
        assert result.trail[0] == path4.source
        assert set(result.trail) == set(path4.nodes())


class TestAdvisedTreeExplorer:
    def test_exact_tour(self, zoo_graph):
        result = run_exploration(zoo_graph, GossipTreeOracle(), AdvisedTreeExplorer())
        assert result.success
        assert result.moves == 2 * (zoo_graph.num_nodes - 1)

    def test_memoryless(self, k5):
        # one explorer instance reused across runs must behave identically —
        # it carries no state at all
        explorer = AdvisedTreeExplorer()
        a = run_exploration(k5, GossipTreeOracle(), explorer)
        b = run_exploration(k5, GossipTreeOracle(), explorer)
        assert a.trail == b.trail
        assert a.success and b.success

    def test_damaged_advice_halts_safely(self, k5):
        result = run_exploration(k5, NullOracle(), AdvisedTreeExplorer())
        assert result.halted  # no crash, no spin
        assert not result.success

    def test_inconsistent_entry_halts(self):
        view = AgentView(advice=BitString(""), degree=3, entry_port=2, node_label=0)
        assert AdvisedTreeExplorer().choose_port(view) is None

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=3, max_value=16),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_random_graphs(self, n, seed):
        rng = random.Random(seed)
        g = random_connected_gnp(n, 0.5, rng, port_order="random")
        result = run_exploration(g, GossipTreeOracle(), AdvisedTreeExplorer())
        assert result.success
        assert result.moves == 2 * (g.num_nodes - 1)


class TestDFSExplorer:
    def test_explores_everything(self, zoo_graph):
        result = run_exploration(zoo_graph, NullOracle(), DFSExplorer())
        assert result.success

    def test_theta_m_moves(self):
        g = complete_graph_star(12)
        result = run_exploration(g, NullOracle(), DFSExplorer())
        assert g.num_edges <= result.moves <= 4 * g.num_edges

    def test_needs_labels(self, k5):
        with pytest.raises(ValueError):
            run_exploration(k5, NullOracle(), DFSExplorer(), anonymous=True)

    def test_fresh_instance_needed_per_run(self, k5):
        # DFSExplorer carries memory; reusing it halts immediately at the
        # remembered start — documented behaviour, asserted here
        explorer = DFSExplorer()
        first = run_exploration(k5, NullOracle(), explorer)
        second = run_exploration(k5, NullOracle(), explorer)
        assert first.success
        assert second.moves < first.moves


class TestRotorRouter:
    def test_covers_with_budget(self, zoo_graph):
        budget = 6 * zoo_graph.num_edges
        result = run_exploration(
            zoo_graph, NullOracle(), RotorRouterExplorer(budget=budget)
        )
        assert result.visited == zoo_graph.num_nodes

    def test_budget_exhausts(self):
        g = cycle_graph(8)
        result = run_exploration(g, NullOracle(), RotorRouterExplorer(budget=3))
        assert result.moves == 3
        assert result.halted  # budget exhausted => returns None

    def test_negative_budget(self):
        with pytest.raises(ValueError):
            RotorRouterExplorer(budget=-1)

    def test_needs_labels(self, k5):
        with pytest.raises(ValueError):
            run_exploration(k5, NullOracle(), RotorRouterExplorer(budget=5), anonymous=True)


class TestRegimeOrdering:
    def test_advice_beats_memory_beats_blind(self):
        g = grid_graph(5, 5)
        advised = run_exploration(g, GossipTreeOracle(), AdvisedTreeExplorer())
        dfs = run_exploration(g, NullOracle(), DFSExplorer())
        assert advised.moves <= dfs.moves
        assert advised.oracle_bits > 0
        assert dfs.oracle_bits == 0
