"""Per-node runtime: the local view a scheme executes against.

A scheme (the paper's ``S_v``) only ever sees what the model allows it to
see: its advice string ``f(v)``, its status bit ``s(v)``, its identifier
``id(v)`` (or ``None`` in anonymous runs), its degree ``deg(v)``, and the
sequence of (message, arrival port) pairs received so far — the *history* of
Section 1.4.  :class:`NodeContext` is that view plus the single action the
model offers: sending a message through a local port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, List, Optional, Protocol, Tuple, runtime_checkable

from ..encoding import BitString
from .messages import Payload, SendRequest

__all__ = ["NodeContext", "Process", "WakeupViolation", "NodeRuntime"]


class WakeupViolation(RuntimeError):
    """A non-source node tried to transmit spontaneously during a wakeup.

    The paper's wakeup schemes "do not send any messages ... on all histories
    with no messages, unless v is the source".  The engine enforces this when
    run in wakeup mode; a violating algorithm is simply not a wakeup
    algorithm, so we fail loudly instead of miscounting.
    """


@dataclass
class NodeContext:
    """Local knowledge and send capability handed to a scheme.

    ``node_id`` is ``None`` in anonymous runs (the paper's upper bounds are
    claimed to survive anonymity; benchmark E7 checks ours do).

    Besides sending, a scheme may :meth:`output` a value — the mechanism
    for *construction* tasks (build a spanning tree, elect a leader, ...)
    where each node must end the run holding a piece of the answer.  The
    last output wins; outputs are collected on the trace.
    """

    advice: BitString
    is_source: bool
    node_id: Optional[Hashable]
    degree: int
    _outbox: List[SendRequest] = field(default_factory=list)
    _output: Optional[object] = None
    _has_output: bool = False

    def output(self, value: object) -> None:
        """Record this node's piece of the task's answer."""
        self._output = value
        self._has_output = True

    @property
    def output_value(self) -> Optional[object]:
        """(Engine/tests.)  The last value passed to :meth:`output`."""
        return self._output

    @property
    def has_output(self) -> bool:
        return self._has_output

    def send(self, payload: Payload, port: int) -> None:
        """Queue ``payload`` for transmission through local ``port``."""
        if not 0 <= port < self.degree:
            raise ValueError(
                f"port {port} out of range for degree {self.degree} at node {self.node_id!r}"
            )
        self._outbox.append(SendRequest(payload, port))

    def send_many(self, payload: Payload, ports) -> None:
        """Queue the same payload on several ports."""
        for port in ports:
            self.send(payload, port)

    def drain(self) -> List[SendRequest]:
        """(Engine only.)  Remove and return the queued sends."""
        out, self._outbox = self._outbox, []
        return out


@runtime_checkable
class Process(Protocol):
    """What a node runs: the event-driven form of a broadcast/wakeup scheme.

    ``on_init`` is the scheme evaluated on the empty history (where broadcast
    schemes may transmit spontaneously and wakeup schemes may not);
    ``on_receive`` is the scheme evaluated after each received message.  The
    full history is reconstructible from the engine's trace, so this
    event-driven formulation is equivalent to the paper's
    history-to-actions function while being natural to implement.
    """

    def on_init(self, ctx: NodeContext) -> None:  # pragma: no cover - protocol
        ...

    def on_receive(self, ctx: NodeContext, payload: Payload, port: int) -> None:  # pragma: no cover
        ...


@dataclass
class NodeRuntime:
    """Engine-side state for one node."""

    label: Hashable
    context: NodeContext
    process: Process
    informed: bool
    history: List[Tuple[Any, int]] = field(default_factory=list)
    informed_at: Optional[int] = None
    received_count: int = 0
    sent_count: int = 0
