"""Tests for Theorem 2.1's spanning-tree wakeup oracle."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import decode_children_ports
from repro.network import (
    GraphError,
    complete_graph_star,
    path_graph,
    random_connected_gnp,
    star_graph,
)
from repro.oracles import (
    SpanningTreeWakeupOracle,
    build_spanning_tree,
    children_port_map,
    tree_edges,
)


class TestBuildSpanningTree:
    def test_bfs_covers_all(self, zoo_graph):
        parent = build_spanning_tree(zoo_graph, "bfs")
        assert set(parent) == set(zoo_graph.nodes())
        assert parent[zoo_graph.source] is None
        assert len(tree_edges(parent)) == zoo_graph.num_nodes - 1

    def test_dfs_covers_all(self, zoo_graph):
        parent = build_spanning_tree(zoo_graph, "dfs")
        assert set(parent) == set(zoo_graph.nodes())
        assert len(tree_edges(parent)) == zoo_graph.num_nodes - 1

    def test_random_covers_all(self, zoo_graph):
        parent = build_spanning_tree(zoo_graph, "random", random.Random(3))
        assert set(parent) == set(zoo_graph.nodes())

    def test_random_requires_rng(self, k5):
        with pytest.raises(GraphError):
            build_spanning_tree(k5, "random")

    def test_unknown_kind(self, k5):
        with pytest.raises(GraphError):
            build_spanning_tree(k5, "prim")

    def test_tree_edges_are_graph_edges(self, zoo_graph):
        parent = build_spanning_tree(zoo_graph, "bfs")
        for child, par in tree_edges(parent):
            assert zoo_graph.has_edge(child, par)

    def test_parents_form_rooted_tree(self, k5):
        parent = build_spanning_tree(k5, "dfs")
        # every node reaches the root by following parents
        for v in k5.nodes():
            steps = 0
            cur = v
            while parent[cur] is not None:
                cur = parent[cur]
                steps += 1
                assert steps <= k5.num_nodes
            assert cur == k5.source


class TestChildrenPortMap:
    def test_child_counts_sum(self, zoo_graph):
        parent = build_spanning_tree(zoo_graph, "bfs")
        ports = children_port_map(zoo_graph, parent)
        assert sum(len(p) for p in ports.values()) == zoo_graph.num_nodes - 1

    def test_ports_lead_to_children(self, k5):
        parent = build_spanning_tree(k5, "bfs")
        ports = children_port_map(k5, parent)
        for v, plist in ports.items():
            for p in plist:
                child = k5.neighbor_via(v, p)
                assert parent[child] == v


class TestOracle:
    def test_advice_decodes_to_children(self, zoo_graph):
        oracle = SpanningTreeWakeupOracle()
        advice = oracle.advise(zoo_graph)
        parent = build_spanning_tree(zoo_graph, "bfs")
        ports = children_port_map(zoo_graph, parent)
        for v in zoo_graph.nodes():
            assert decode_children_ports(advice[v]) == ports[v]

    def test_predicted_size_matches(self, zoo_graph):
        oracle = SpanningTreeWakeupOracle()
        assert oracle.predicted_size(zoo_graph) == oracle.size_on(zoo_graph)

    def test_size_within_analytic_bound(self, zoo_graph):
        oracle = SpanningTreeWakeupOracle()
        n = zoo_graph.num_nodes
        assert oracle.size_on(zoo_graph) <= SpanningTreeWakeupOracle.size_upper_bound(n)

    def test_size_rate_is_n_log_n(self):
        # constant in front of n log n should approach 1 from above
        ratios = []
        for n in (64, 256, 1024):
            g = complete_graph_star(n)
            size = SpanningTreeWakeupOracle().size_on(g)
            ratios.append(size / (n * math.log2(n)))
        assert ratios[0] > ratios[-1]  # decreasing toward 1
        assert ratios[-1] < 1.5

    def test_star_center_gets_everything(self):
        g = star_graph(8)  # center 0 is source, has 7 children
        advice = SpanningTreeWakeupOracle().advise(g)
        assert len(decode_children_ports(advice[0])) == 7
        for leaf in range(1, 8):
            assert len(advice[leaf]) == 0

    def test_leaves_get_empty_advice(self):
        g = path_graph(5)
        advice = SpanningTreeWakeupOracle().advise(g)
        assert len(advice[4]) == 0  # the far endpoint is a leaf

    def test_kinds_give_different_trees_same_bound(self):
        rng = random.Random(11)
        g = random_connected_gnp(24, 0.3, rng)
        sizes = {}
        for kind in ("bfs", "dfs", "random"):
            oracle = SpanningTreeWakeupOracle(kind, seed=5)
            sizes[kind] = oracle.size_on(g)
            assert sizes[kind] <= SpanningTreeWakeupOracle.size_upper_bound(g.num_nodes)
        assert len(sizes) == 3

    def test_name(self):
        assert "dfs" in SpanningTreeWakeupOracle("dfs").name

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_size_bound_random_graphs(self, seed):
        rng = random.Random(seed)
        g = random_connected_gnp(14, 0.35, rng)
        n = g.num_nodes
        assert SpanningTreeWakeupOracle().size_on(g) <= SpanningTreeWakeupOracle.size_upper_bound(n)
