"""The parallel executor and construction cache, measured.

Two claims, each timed and asserted:

* **Fan-out** — ``workers=4`` beats the serial path on the E1+E4 grid
  while producing identical rows.  The speedup assertion only fires on
  hosts with at least two usable cores (a single-CPU container cannot
  speed anything up by forking); the measured ratio and the core count
  are recorded in ``extra_info`` either way, so the committed
  ``BENCH_parallel.json`` always says what hardware it was measured on.
* **Cache** — repeating the grid against a warm
  :class:`~repro.parallel.ConstructionCache` cuts wall time by at least
  30%.  Cell cost on this grid is dominated by advice computation
  (light-tree MSTs on dense graphs), which is exactly what the cache
  memoizes.

The grid leans dense (``complete``, ``kstar``, ``gnp_dense`` at
n = 256..512) so per-cell work dwarfs pool start-up, and no single cell
dominates the total.
"""

import functools
import os
import time

from conftest import run_once

from repro.analysis import sweep_families
from repro.parallel import ConstructionCache, e1_e4_cell, parallel_sweep_families

FAMILIES = ("complete", "kstar", "gnp_dense")
SIZES = (256, 384, 512)
MEASUREMENT = functools.partial(e1_e4_cell, seed=0)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _compare_serial_parallel():
    start = time.perf_counter()
    serial_rows = sweep_families(SIZES, MEASUREMENT, families=FAMILIES)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel_rows = parallel_sweep_families(
        SIZES, MEASUREMENT, families=FAMILIES, workers=4
    )
    parallel_s = time.perf_counter() - start
    return {
        "serial_s": serial_s,
        "workers4_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "cpus": _usable_cpus(),
        "rows_match": parallel_rows == serial_rows,
        "cells": len(serial_rows),
    }


def _compare_cold_warm():
    cache = ConstructionCache()
    start = time.perf_counter()
    cold_rows = sweep_families(SIZES, MEASUREMENT, families=FAMILIES, cache=cache)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm_rows = sweep_families(SIZES, MEASUREMENT, families=FAMILIES, cache=cache)
    warm_s = time.perf_counter() - start
    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_cut": 1.0 - warm_s / cold_s,
        "rows_match": warm_rows == cold_rows,
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
    }


def test_parallel_vs_serial(benchmark):
    outcome = run_once(benchmark, _compare_serial_parallel)
    for key, value in outcome.items():
        benchmark.extra_info[key] = value
    assert outcome["rows_match"], "parallel rows diverged from serial"
    if outcome["cpus"] >= 2:
        assert outcome["speedup"] >= 2.0, (
            f"workers=4 only {outcome['speedup']:.2f}x faster "
            f"on {outcome['cpus']} cpus"
        )


def test_warm_cache_cuts_repeat_grid(benchmark):
    outcome = run_once(benchmark, _compare_cold_warm)
    for key, value in outcome.items():
        benchmark.extra_info[key] = value
    assert outcome["rows_match"], "cached rows diverged"
    assert outcome["misses"] == outcome["hits"], "warm pass was not all hits"
    assert outcome["warm_cut"] >= 0.30, (
        f"warm cache only cut {outcome['warm_cut']:.0%} of repeat-grid time"
    )
