"""ASCII table rendering for experiment output.

The benchmarks print paper-style result tables to stdout;
:func:`format_table` is the single renderer they share, so every experiment
reads the same way: a title, a header row, aligned columns, floats shown
with sensible precision.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: Any) -> str:
    """Render one cell: floats at 3 significant decimals, bools as yes/no."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned ASCII table.

    ``columns`` fixes the column order (default: keys of the first row).
    Missing values render as ``-``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols: List[str] = list(columns) if columns else list(rows[0].keys())
    cells = [[format_value(r.get(c, "-")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
