"""Compiled execution core: the simulation fast path.

:class:`repro.simulator.Simulation` transparently dispatches here unless
``REPRO_FASTPATH=0`` is set in the environment.  The package has two
halves:

* :mod:`repro.fastpath.topology` — :class:`CompiledTopology`, the
  flat-array (CSR-style) form of a frozen
  :class:`~repro.network.graph.PortLabeledGraph`: nodes mapped to dense
  ``0..n-1`` indices, neighbor-via-port and arrival-port lookups turned
  into two flat-array indexings.  Compiled at ``freeze()`` time and cached
  on the graph.
* :mod:`repro.fastpath.engine` — :func:`run_fastpath`, the optimized
  execution loops.  Synchronous runs use a scheduler-free round-batched
  core over plain tuples; every other scheduler gets a generic loop that
  still benefits from the compiled lookups.

The correctness contract (enforced by ``tests/test_fastpath.py``): at
``trace_level="full"`` the fast path is **byte-identical** to the legacy
path — same :class:`~repro.simulator.trace.ExecutionTrace`, same obs event
stream, same JSONL — for every scheduler.  See ``docs/PERFORMANCE.md``.
"""

from .engine import run_fastpath
from .topology import CompiledTopology, compile_topology, compiled_topology

__all__ = [
    "CompiledTopology",
    "compile_topology",
    "compiled_topology",
    "run_fastpath",
]
