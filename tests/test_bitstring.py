"""Unit and property tests for the BitString value type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding import BitReader, BitString

bits_lists = st.lists(st.integers(min_value=0, max_value=1), max_size=64)


class TestConstruction:
    def test_empty(self):
        assert len(BitString()) == 0
        assert len(BitString.empty()) == 0
        assert not BitString.empty()

    def test_from_string(self):
        s = BitString("1010")
        assert len(s) == 4
        assert list(s) == [1, 0, 1, 0]

    def test_from_list(self):
        assert BitString([1, 1, 0]).to01() == "110"

    def test_from_bitstring_copies(self):
        a = BitString("101")
        assert BitString(a) == a

    def test_leading_zeros_preserved(self):
        s = BitString("0001")
        assert len(s) == 4
        assert s.to01() == "0001"

    def test_invalid_character(self):
        with pytest.raises(ValueError):
            BitString("10x1")

    def test_invalid_bit_value(self):
        with pytest.raises(ValueError):
            BitString([0, 2])

    def test_from_int(self):
        assert BitString.from_int(5, 4).to01() == "0101"
        assert BitString.from_int(0, 3).to01() == "000"
        assert BitString.from_int(0, 0).to01() == ""

    def test_from_int_overflow(self):
        with pytest.raises(ValueError):
            BitString.from_int(8, 3)

    def test_from_int_negative(self):
        with pytest.raises(ValueError):
            BitString.from_int(-1, 3)


class TestSequence:
    def test_indexing(self):
        s = BitString("1001")
        assert s[0] == 1
        assert s[1] == 0
        assert s[3] == 1
        assert s[-1] == 1
        assert s[-4] == 1

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            BitString("10")[2]

    def test_slicing(self):
        s = BitString("110010")
        assert s[1:4].to01() == "100"
        assert s[:0].to01() == ""
        assert s[2:].to01() == "0010"
        assert s[::2].to01() == "101"

    def test_iteration(self):
        assert list(BitString("011")) == [0, 1, 1]

    def test_bool(self):
        assert BitString("0")
        assert not BitString("")


class TestOperations:
    def test_concat(self):
        assert (BitString("10") + BitString("01")).to01() == "1001"

    def test_concat_empty(self):
        s = BitString("101")
        assert (s + BitString.empty()) == s
        assert (BitString.empty() + s) == s

    def test_concat_many(self):
        parts = [BitString("1"), BitString("00"), BitString(""), BitString("11")]
        assert BitString.concat(parts).to01() == "10011"

    def test_equality_and_hash(self):
        assert BitString("101") == BitString([1, 0, 1])
        assert BitString("101") != BitString("0101")  # length matters
        assert hash(BitString("11")) == hash(BitString("11"))

    def test_eq_other_type(self):
        assert BitString("1") != "1"

    def test_to_int(self):
        assert BitString("1101").to_int() == 13
        assert BitString("").to_int() == 0

    def test_repr_roundtrip(self):
        s = BitString("0110")
        assert eval(repr(s)) == s


class TestBitReader:
    def test_read_bits(self):
        r = BitReader(BitString("1011"))
        assert r.read_bit() == 1
        assert r.read_bit() == 0
        assert r.remaining == 2
        assert r.position == 2

    def test_read_width(self):
        r = BitReader(BitString("110101"))
        assert r.read(3).to01() == "110"
        assert r.read_int(3) == 0b101
        assert r.exhausted()

    def test_read_past_end(self):
        r = BitReader(BitString("1"))
        r.read_bit()
        with pytest.raises(EOFError):
            r.read_bit()
        with pytest.raises(EOFError):
            r.read(1)

    def test_peek(self):
        r = BitReader(BitString("01"))
        assert r.peek_bit() == 0
        assert r.position == 0
        r.read_bit()
        assert r.peek_bit() == 1

    def test_peek_empty(self):
        with pytest.raises(EOFError):
            BitReader(BitString("")).peek_bit()

    def test_read_rest(self):
        r = BitReader(BitString("10011"))
        r.read_bit()
        assert r.read_rest().to01() == "0011"
        assert r.exhausted()

    def test_read_negative_width(self):
        with pytest.raises(ValueError):
            BitReader(BitString("1")).read(-1)


class TestProperties:
    @given(bits_lists)
    def test_roundtrip_list(self, bits):
        assert list(BitString(bits)) == bits

    @given(bits_lists)
    def test_to01_roundtrip(self, bits):
        s = BitString(bits)
        assert BitString(s.to01()) == s

    @given(bits_lists, bits_lists)
    def test_concat_length(self, a, b):
        assert len(BitString(a) + BitString(b)) == len(a) + len(b)

    @given(bits_lists, bits_lists)
    def test_concat_content(self, a, b):
        assert list(BitString(a) + BitString(b)) == a + b

    @given(st.integers(min_value=0, max_value=2**40 - 1), st.integers(min_value=40, max_value=60))
    def test_from_int_roundtrip(self, value, width):
        assert BitString.from_int(value, width).to_int() == value

    @given(bits_lists, st.data())
    def test_slice_matches_list(self, bits, data):
        s = BitString(bits)
        start = data.draw(st.integers(min_value=0, max_value=len(bits)))
        stop = data.draw(st.integers(min_value=start, max_value=len(bits)))
        assert list(s[start:stop]) == bits[start:stop]

    @given(bits_lists)
    def test_reader_consumes_everything(self, bits):
        r = BitReader(BitString(bits))
        out = [r.read_bit() for _ in range(len(bits))]
        assert out == bits
        assert r.exhausted()
