"""The blocking daemon entry point behind ``repro serve``.

:func:`serve` owns process-level concerns the library service object
stays out of: the event loop, POSIX signals, the ready line, and the
access-log file.  SIGTERM/SIGINT trigger a graceful drain — in-flight
requests finish and are answered, new ones are refused with ``draining``
— and the process exits 0 once the drain completes, which is the contract
process supervisors (and the CI smoke job) rely on.

The ready line is machine-parseable on purpose::

    repro-serve ready http=127.0.0.1:43117 ipc=/tmp/repro.sock workers=0

Supervisors and test harnesses wait for it instead of polling the port.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from typing import Optional

from ..obs.metrics import MetricsRegistry
from ..obs.observe import Observation
from ..obs.sinks import JSONLSink
from .core import AdviceService, ServiceConfig

__all__ = ["serve", "ready_line"]


def ready_line(service: AdviceService) -> str:
    """The one-line readiness announcement for the bound listeners."""
    host, port = service.http_address
    return (
        f"repro-serve ready http={host}:{port} "
        f"ipc={service.ipc_path or '-'} workers={service.config.workers}"
    )


async def _serve_async(config: ServiceConfig, obs: Observation) -> None:
    service = AdviceService(config, obs=obs)
    await service.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, service.request_drain)
    print(ready_line(service), flush=True)
    await service.stopped.wait()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.remove_signal_handler(signum)
    print(
        f"repro-serve drained served={service.served} "
        f"rejected={service.rejected}",
        flush=True,
        file=sys.stderr,
    )


def serve(config: ServiceConfig, access_log: Optional[str] = None) -> int:
    """Run the daemon until a drain completes; returns the exit code.

    ``access_log`` names a JSONL file receiving the ``service_*`` event
    stream (readable by ``repro stats``); metrics are registered alongside
    it so ``GET /stats`` reports the folded counters either way.
    """
    sink = JSONLSink(access_log) if access_log else None
    obs = Observation(sink, metrics=MetricsRegistry())
    asyncio.run(_serve_async(config, obs))
    return 0
