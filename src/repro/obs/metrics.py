"""The metrics registry: counters, gauges, and exact-value histograms.

Metrics are the aggregate face of the event stream.  The registry itself
is dumb storage — what gives it meaning is :func:`apply_event`, the single
reducer that folds one telemetry event into a registry.  The live
:class:`repro.obs.Observation` and the offline JSONL reader both go
through this one function, which is why ``repro stats`` on a saved trace
reproduces the in-memory metrics of the run that wrote it, bit for bit.

Histograms count exact values (our domain's distributions — queue depths,
messages per round, advice bits per node — are small non-negative
integers), so they double as the per-round tables the CLI prints.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Union

from .events import Event

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "apply_event"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Exact-value histogram: per-value counts plus running aggregates."""

    __slots__ = ("name", "counts", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: Dict[Number, int] = {}
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number, count: int = 1) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        self.counts[value] = self.counts.get(value, 0) + count
        self.count += count
        self.total += value * count
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[Number]:
        """Exact nearest-rank quantile from the per-value counts.

        ``quantile(0.5)`` is the median observation; ``quantile(0)`` is the
        min and ``quantile(1)`` the max.  Exact because the histogram keeps
        every distinct value — no bucketing error to apologize for.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return None
        rank = max(1, -(-int(q * self.count * 10**9) // 10**9))  # ceil, fp-safe
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if seen >= rank:
                return value
        return self.max

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
            "counts": {str(k): v for k, v in sorted(self.counts.items())},
        }


class MetricsRegistry:
    """Named metrics, created on first use (get-or-create semantics)."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Full registry state as plain data, deterministically ordered."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def as_rows(self) -> List[Dict[str, Any]]:
        """Table rows for :func:`repro.analysis.tables.format_table`."""
        rows: List[Dict[str, Any]] = []
        for name in self.names():
            snap = self._metrics[name].snapshot()
            row: Dict[str, Any] = {"metric": name, "type": snap["type"]}
            if snap["type"] == "histogram":
                row.update(
                    count=snap["count"], sum=snap["sum"], min=snap["min"],
                    max=snap["max"], mean=snap["mean"],
                    p50=snap["p50"], p90=snap["p90"], p99=snap["p99"],
                )
            else:
                row["value"] = snap["value"]
            rows.append(row)
        return rows


def apply_event(metrics: MetricsRegistry, event: Union[Event, Mapping[str, Any]]) -> None:
    """Fold one event (typed, or a decoded JSONL dict) into ``metrics``.

    This is *the* semantics of every event kind as far as metrics are
    concerned; keeping it in one place is what makes saved streams replay
    to the exact registry the live run held.
    """
    data: Mapping[str, Any] = event.to_dict() if isinstance(event, Event) else event
    kind = data.get("event")
    if kind == "run_started":
        metrics.counter("runs").inc()
        metrics.gauge("nodes").set(data["nodes"])
        metrics.gauge("edges").set(data["edges"])
    elif kind == "round_started":
        metrics.counter("rounds_started").inc()
    elif kind == "message_sent":
        metrics.counter("messages_sent").inc()
        depth = metrics.counter("messages_sent").value - metrics.counter(
            "messages_delivered"
        ).value
        metrics.histogram("queue_depth").observe(depth)
    elif kind == "message_delivered":
        metrics.counter("messages_delivered").inc()
        metrics.histogram("messages_per_round").observe(data["round"])
        if data["newly_informed"]:
            metrics.counter("nodes_informed").inc()
            metrics.histogram("informed_at_step").observe(data["step"])
    elif kind == "limit_hit":
        metrics.counter("limit_hits").inc()
    elif kind == "run_ended":
        metrics.gauge("rounds").set(data["rounds"])
        metrics.gauge("informed").set(data["informed"])
        metrics.gauge("undelivered").set(data["undelivered"])
        metrics.gauge("completed").set(1 if data["completed"] else 0)
        nodes = data["nodes"]
        if nodes:
            metrics.gauge("informed_fraction").set(data["informed"] / nodes)
    elif kind == "advice_computed":
        metrics.gauge("oracle_bits").set(data["total_bits"])
        hist = metrics.histogram("advice_bits_per_node")
        for bits, count in data["bits_histogram"].items():
            hist.observe(int(bits), int(count))
    elif kind == "audit_failed":
        metrics.counter("audit_failures").inc()
    elif kind == "span_started":
        metrics.counter(f"spans.{data['name']}").inc()
    elif kind == "sweep_cell_measured":
        metrics.counter("sweep_cells").inc()
    elif kind == "sweep_cell_skipped":
        metrics.counter("sweep_cells_skipped").inc()
    elif kind == "cell_attempt_failed":
        metrics.counter("runner_attempt_failures").inc()
    elif kind == "cell_retried":
        metrics.counter("runner_retries").inc()
    elif kind == "cell_failed":
        metrics.counter("runner_cells_failed").inc()
    elif kind == "cell_resumed":
        metrics.counter("runner_cells_resumed").inc()
    elif kind == "adversary_probe":
        metrics.counter("adversary_probes").inc()
        metrics.gauge("adversary_active_instances").set(data["active_after"])
    elif kind == "service_started":
        metrics.counter("service_starts").inc()
    elif kind == "service_request":
        metrics.counter("service_requests").inc()
        metrics.histogram("service_queue_depth").observe(data["pending"])
    elif kind == "service_response":
        metrics.counter("service_responses").inc()
        source = data["source"]
        if source == "computed":
            metrics.counter("service_computed").inc()
        elif source == "coalesced":
            metrics.counter("service_coalesced").inc()
        elif source == "cache":
            metrics.counter("service_cache_hits").inc()
        if data["status"] != "ok":
            metrics.counter("service_errors").inc()
    elif kind == "service_rejected":
        metrics.counter("service_rejections").inc()
    elif kind == "service_drained":
        metrics.counter("service_drains").inc()
        metrics.gauge("service_served").set(data["served"])
        metrics.gauge("service_rejected_total").set(data["rejected"])
    elif kind == "verdict_rendered":
        metrics.counter("verdicts").inc()
        metrics.counter(f"verdicts_{data['status'].lower()}").inc()
        metrics.counter("verdict_checks_confirmed").inc(data["confirmed"])
        metrics.counter("verdict_checks_refuted").inc(data["refuted"])
        metrics.counter("verdict_checks_inconclusive").inc(data["inconclusive"])
    elif kind == "cache_stats":
        for field in (
            "hits", "misses", "evictions", "disk_hits", "disk_writes",
            "corrupt_dropped", "entries",
        ):
            metrics.gauge(f"cache_{field}").set(data[field])
    # span_ended and unknown kinds: no metric contribution.
