"""Tests for the determinism sanitizer (DET001-DET008) and its baseline."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.lint import (
    DET_RULES,
    apply_baseline,
    det_rule_catalog,
    lint_file,
    lint_paths,
    lint_source,
    load_baseline,
    placeholder_reasons,
    write_baseline,
)
from repro.lint.baseline import BaselineEntry, BaselineError
from repro.lint.callgraph import build_call_graph
from repro.network.graph import GraphError, edge_key, label_key

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
LIBRARY = os.path.join(REPO_ROOT, "src", "repro")
BASELINE = os.path.join(REPO_ROOT, "lint_baseline.json")


def codes(findings):
    return sorted({f.code for f in findings})


def det_lint(source, path="<string>"):
    return lint_source(source, path=path, rules=DET_RULES)


class TestFixturesAreCaught:
    """Each known-bad DET fixture must trip exactly its intended rule."""

    @pytest.mark.parametrize(
        "filename,expected",
        [
            ("det_set_order.py", "DET001"),
            ("det_wall_clock.py", "DET002"),
            ("det_global_random.py", "DET003"),
            ("det_identity_sort.py", "DET004"),
            ("det_unsorted_listdir.py", "DET005"),
            ("det_env_read.py", "DET006"),
            ("det_float_accum.py", "DET007"),
            ("det_unthreaded_seed.py", "DET008"),
        ],
    )
    def test_fixture_flagged_with_its_code(self, filename, expected):
        findings = lint_file(os.path.join(FIXTURES, filename))
        assert codes(findings) == [expected]
        assert all(f.line > 0 and f.snippet for f in findings)

    def test_directory_sweep_reports_every_det_rule(self):
        findings = lint_paths([FIXTURES], select=["DET"])
        assert codes(findings) == [rule.code for rule in DET_RULES]


class TestSelfLint:
    """The shipped library passes its own sanitizer, modulo the baseline."""

    def test_library_det_clean_modulo_baseline(self):
        findings = lint_paths([LIBRARY], select=["DET"])
        entries = load_baseline(BASELINE)
        kept, accepted, stale = apply_baseline(findings, entries)
        assert kept == [], "new DET findings in src/repro:\n" + "\n".join(
            str(f) for f in kept
        )
        assert stale == [], "stale baseline entries: " + ", ".join(
            f"{e.code}@{e.path}" for e in stale
        )
        assert accepted, "baseline exists but absorbed nothing"

    def test_every_baseline_entry_is_justified(self):
        entries = load_baseline(BASELINE)
        assert placeholder_reasons(entries) == []
        assert all(len(e.reason.strip()) > 10 for e in entries)

    def test_cli_det_select_with_baseline_exits_zero(self, capsys):
        assert main(["lint", LIBRARY, "--select", "DET", "--baseline", BASELINE]) == 0
        assert "0 findings" in capsys.readouterr().out


class TestRuleDetails:
    """Positives and negatives per rule, straight from source text."""

    # DET001 ------------------------------------------------------------
    def test_det001_sorted_set_is_fine(self):
        assert det_lint("def f(xs):\n    s = set(xs)\n    return sorted(s)\n") == []

    def test_det001_listcomp_over_set_is_flagged(self):
        findings = det_lint("def f(xs):\n    s = set(xs)\n    return [x for x in s]\n")
        assert codes(findings) == ["DET001"]

    def test_det001_set_typed_parameter_annotation_is_tracked(self):
        source = (
            "from typing import Set\n"
            "def f(s: Set[int]):\n"
            "    out = []\n"
            "    for x in s:\n"
            "        out.append(x)\n"
            "    return out\n"
        )
        assert codes(det_lint(source)) == ["DET001"]

    def test_det001_set_knowledge_does_not_leak_between_functions(self):
        # `names` is a set in f but a list in g; g must not be flagged.
        source = (
            "def f(xs):\n"
            "    names = set(xs)\n"
            "    return names\n"
            "def g(xs):\n"
            "    names = [x for x in xs]\n"
            "    return ', '.join(names)\n"
        )
        assert det_lint(source) == []

    # DET002 ------------------------------------------------------------
    def test_det002_span_registry_module_is_exempt(self):
        source = "from time import perf_counter\ndef f():\n    return perf_counter()\n"
        assert codes(det_lint(source)) == ["DET002"]
        assert det_lint(source, path="src/repro/obs/observe.py") == []

    def test_det002_datetime_now_is_flagged(self):
        source = "import datetime\ndef f():\n    return datetime.datetime.now()\n"
        assert codes(det_lint(source)) == ["DET002"]

    # DET003 ------------------------------------------------------------
    def test_det003_seeded_random_instance_is_fine(self):
        source = "import random\ndef f(seed):\n    return random.Random(seed)\n"
        assert det_lint(source) == []

    def test_det003_unseeded_random_is_flagged(self):
        source = "import random\ndef f():\n    return random.Random()\n"
        assert "DET003" in codes(det_lint(source))

    def test_det003_fires_even_outside_model_code(self):
        # Unlike MDL003, driver/analysis code is NOT exempt.
        assert codes(det_lint("import random\nx = random.random()\n")) == ["DET003"]

    # DET004 ------------------------------------------------------------
    def test_det004_label_key_is_sanctioned(self):
        source = (
            "from repro.network.graph import label_key\n"
            "def f(nodes):\n"
            "    return sorted(nodes, key=label_key)\n"
        )
        assert det_lint(source) == []

    def test_det004_id_in_content_address_is_flagged(self):
        source = "def f(g):\n    return content_address('v1', id(g))\n"
        assert codes(det_lint(source)) == ["DET004"]

    # DET005 ------------------------------------------------------------
    def test_det005_sorted_listing_is_fine(self):
        source = "import os\ndef f(d):\n    return sorted(os.listdir(d))\n"
        assert det_lint(source) == []

    def test_det005_path_glob_is_flagged(self):
        source = "def f(p):\n    return list(p.glob('*.json'))\n"
        assert codes(det_lint(source)) == ["DET005"]

    # DET006 ------------------------------------------------------------
    def test_det006_repro_prefix_is_allowed(self):
        source = "import os\ndef f():\n    return os.environ.get('REPRO_WORKERS')\n"
        assert det_lint(source) == []

    def test_det006_key_resolved_through_module_constant(self):
        ok = (
            "import os\n"
            "CACHE_ENV = 'REPRO_CACHE_DIR'\n"
            "def f():\n    return os.environ.get(CACHE_ENV)\n"
        )
        bad = (
            "import os\n"
            "CACHE_ENV = 'XDG_CACHE_HOME'\n"
            "def f():\n    return os.environ.get(CACHE_ENV)\n"
        )
        assert det_lint(ok) == []
        assert codes(det_lint(bad)) == ["DET006"]

    def test_det006_getenv_is_flagged(self):
        source = "import os\ndef f():\n    return os.getenv('HOME')\n"
        assert codes(det_lint(source)) == ["DET006"]

    # DET007 ------------------------------------------------------------
    def test_det007_sum_over_sorted_is_fine(self):
        source = "def f(xs):\n    s = set(xs)\n    return sum(sorted(s))\n"
        assert det_lint(source) == []

    def test_det007_findings_are_warnings(self):
        source = "def f(xs):\n    s = set(xs)\n    return sum(s)\n"
        findings = det_lint(source)
        assert codes(findings) == ["DET007"]
        assert all(f.severity == "warning" for f in findings)
        assert all(f.to_dict()["severity"] == "warning" for f in findings)

    # DET008 ------------------------------------------------------------
    def test_det008_threaded_kwarg_is_fine(self):
        source = (
            "import random\n"
            "def helper(items, seed=0):\n"
            "    return random.Random(seed).sample(sorted(items), 1)\n"
            "def driver(items, seed):\n"
            "    return helper(items, seed=seed)\n"
        )
        assert det_lint(source) == []

    def test_det008_instance_attribute_seed_is_fine(self):
        source = (
            "import random\n"
            "class S:\n"
            "    def __init__(self, seed):\n"
            "        self._seed = seed\n"
            "    def order(self, items):\n"
            "        rng = random.Random(self._seed)\n"
            "        out = sorted(items)\n"
            "        rng.shuffle(out)\n"
            "        return out\n"
        )
        assert det_lint(source) == []

    def test_det008_module_level_construction_is_flagged(self):
        source = "import random\nRNG = random.Random(0)\n"
        assert "DET008" in codes(det_lint(source))

    def test_det008_cross_module_drop_is_caught(self, tmp_path):
        (tmp_path / "helper.py").write_text(
            "import random\n"
            "def make_order(items, seed=0):\n"
            "    rng = random.Random(seed)\n"
            "    out = sorted(items)\n"
            "    rng.shuffle(out)\n"
            "    return out\n"
        )
        (tmp_path / "driver.py").write_text(
            "from helper import make_order\n"
            "def run(items, seed):\n"
            "    return make_order(items)\n"
        )
        findings = lint_paths([str(tmp_path)], select=["DET008"])
        assert codes(findings) == ["DET008"]
        assert any("run" in f.message and "make_order" in f.message for f in findings)


class TestCallGraph:
    def test_resolves_from_imports_and_seed_passing(self):
        import ast

        trees = {
            "a.py": ast.parse(
                "def helper(x, seed=0):\n    return x\n"
                "def local_caller(seed):\n    return helper(1, seed)\n"
            ),
            "b.py": ast.parse(
                "from a import helper\n"
                "def remote_caller(seed):\n    return helper(1)\n"
            ),
        }
        graph = build_call_graph(trees)
        assert "a.py::helper" in graph.functions
        local_sites = graph.sites_from("a.py::local_caller")
        assert [s.callee.qualname for s in local_sites] == ["helper"]
        assert local_sites[0].passes_seedish()
        remote_sites = graph.sites_from("b.py::remote_caller")
        assert [s.callee.qualname for s in remote_sites] == ["helper"]
        assert not remote_sites[0].passes_seedish()
        assert "a.py::helper" in graph.reachable_from("b.py::remote_caller")


class TestFamilySelection:
    def test_prefix_select_runs_whole_family(self):
        findings = lint_paths([FIXTURES], select=["DET"])
        assert all(f.code.startswith("DET") for f in findings)
        assert len(codes(findings)) == len(DET_RULES)

    def test_catalog_lists_every_det_code(self):
        text = det_rule_catalog()
        for rule in DET_RULES:
            assert rule.code in text
        assert main(["lint", "--list-rules"]) == 0


class TestBaselineMachinery:
    def _finding(self):
        return lint_file(os.path.join(FIXTURES, "det_wall_clock.py"))[0]

    def test_matching_is_by_suffix_code_and_snippet(self):
        f = self._finding()
        entry = BaselineEntry(
            path="fixtures/det_wall_clock.py",
            code="DET002",
            snippet=f.snippet,
            reason="test",
        )
        kept, accepted, stale = apply_baseline([f], [entry])
        assert kept == [] and accepted == [f] and stale == []

    def test_unmatched_entry_is_stale(self):
        entry = BaselineEntry(
            path="no/such/file.py", code="DET002", snippet="x = 1", reason="test"
        )
        kept, accepted, stale = apply_baseline([self._finding()], [entry])
        assert len(kept) == 1 and accepted == [] and stale == [entry]

    def test_write_then_load_round_trips(self, tmp_path):
        findings = lint_file(os.path.join(FIXTURES, "det_wall_clock.py"))
        out = tmp_path / "baseline.json"
        count = write_baseline(findings, str(out))
        assert count == len(findings)
        entries = load_baseline(str(out))
        assert placeholder_reasons(entries) == entries  # regenerated => TODO
        kept, _accepted, stale = apply_baseline(findings, entries)
        assert kept == [] and stale == []

    def test_invalid_baseline_is_rejected(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text("[]")
        with pytest.raises(BaselineError):
            load_baseline(str(bad))
        bad.write_text(json.dumps({"accepted": [{"path": "x", "code": "DET001"}]}))
        with pytest.raises(BaselineError):
            load_baseline(str(bad))
        bad.write_text(
            json.dumps(
                {"accepted": [{"path": "x", "code": "D", "snippet": "s", "reason": " "}]}
            )
        )
        with pytest.raises(BaselineError):
            load_baseline(str(bad))

    def test_cli_stale_baseline_fails(self, tmp_path, capsys):
        # An in-play entry (its file was linted, its rule ran) that matches
        # no finding is an error: baselines must be pruned when fixed.
        stale = tmp_path / "baseline.json"
        stale.write_text(
            json.dumps(
                {
                    "accepted": [
                        {
                            "path": "fixtures/det_wall_clock.py",
                            "code": "DET002",
                            "snippet": "no_such_line = clock()",
                            "reason": "obsolete",
                        }
                    ]
                }
            )
        )
        assert (
            main(
                ["lint", os.path.join(FIXTURES, "det_wall_clock.py"),
                 "--select", "DET", "--baseline", str(stale)]
            )
            == 1
        )
        assert "stale baseline entry" in capsys.readouterr().err

    def test_entry_outside_linted_paths_is_not_stale(self):
        entry = BaselineEntry(
            path="src/repro/runner/core.py",
            code="DET002",
            snippet="now = time.monotonic()",
            reason="scheduling only",
        )
        kept, accepted, stale = apply_baseline(
            [], [entry], linted_paths=["tests/fixtures/det_wall_clock.py"]
        )
        assert kept == [] and accepted == [] and stale == []

    def test_entry_for_unselected_rule_is_not_stale(self):
        entry = BaselineEntry(
            path="src/repro/runner/core.py",
            code="DET002",
            snippet="now = time.monotonic()",
            reason="scheduling only",
        )
        kept, accepted, stale = apply_baseline(
            [], [entry], active_codes=frozenset({"MDL003"})
        )
        assert stale == []

    def test_cli_fixture_sweep_does_not_condemn_src_baseline(self, capsys):
        # The committed baseline covers src/repro/runner/core.py; linting the
        # fixtures directory must report its findings without stale errors.
        assert main(["lint", FIXTURES]) == 1
        assert "stale" not in capsys.readouterr().err

    def test_cli_mdl_select_skips_det_baseline_staleness(self, capsys):
        assert main(["lint", os.path.join(REPO_ROOT, "src", "repro"),
                     "--select", "MDL"]) == 0
        assert "stale" not in capsys.readouterr().err

    def test_cli_write_baseline(self, tmp_path, capsys):
        out = tmp_path / "generated.json"
        assert (
            main(
                ["lint", os.path.join(FIXTURES, "det_wall_clock.py"),
                 "--write-baseline", str(out)]
            )
            == 0
        )
        assert "fill in every reason" in capsys.readouterr().out
        assert load_baseline(str(out))


class TestPragmas:
    def test_det_pragma_silences_one_line(self):
        source = (
            "import os\n"
            "def f(d):\n"
            "    a = os.listdir(d)  # repro-lint: disable=DET005\n"
            "    b = os.listdir(d)\n"
            "    return a + b\n"
        )
        findings = det_lint(source)
        assert [f.line for f in findings] == [4]


class TestLabelKeyRegression:
    """The DET004 fix: label_key refuses address-based orderings."""

    def test_label_key_matches_repr_for_content_labels(self):
        for label in (3, "v", (1, "a")):
            assert label_key(label) == repr(label)

    def test_label_key_rejects_default_repr_objects(self):
        class Opaque:
            pass

        with pytest.raises(GraphError):
            label_key(Opaque())

    def test_label_key_rejects_set_labels(self):
        with pytest.raises(GraphError):
            label_key(frozenset({"a"}))

    def test_edge_key_mixed_types_uses_label_key(self):
        assert edge_key("b", 10) == edge_key(10, "b")

    def test_advice_encoding_is_hashseed_independent(self):
        # The full advice pipeline (graph -> oracle -> advice JSON) must
        # produce identical bytes under different PYTHONHASHSEED values.
        script = (
            "from repro.network.builders import FAMILY_BUILDERS\n"
            "from repro.core.oracle import advice_to_json\n"
            "from repro.oracles import LightTreeBroadcastOracle\n"
            "g = FAMILY_BUILDERS['kstar'](12)\n"
            "print(advice_to_json(LightTreeBroadcastOracle().advise(g)))\n"
        )
        outputs = set()
        for seed in ("0", "1", "2"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            outputs.add(proc.stdout)
        assert len(outputs) == 1
