#!/usr/bin/env python
"""Generate docs/API.md: one line per public symbol, from docstrings.

Run from the repository root:  python scripts/gen_api_docs.py
"""

import importlib
import inspect
import os
import sys

MODULES = [
    "repro",
    "repro.network",
    "repro.encoding",
    "repro.simulator",
    "repro.fastpath",
    "repro.vectorized",
    "repro.core",
    "repro.oracles",
    "repro.algorithms",
    "repro.lowerbounds",
    "repro.lint",
    "repro.obs",
    "repro.parallel",
    "repro.service",
    "repro.runner",
    "repro.analysis",
    "repro.verdict",
    "repro.agent",
    "repro.cli",
]


def first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.strip().splitlines()[0] if doc.strip() else "(no docstring)"


def kind_of(obj) -> str:
    if inspect.isclass(obj):
        return "class"
    if inspect.isfunction(obj):
        return "function"
    return "constant"


def main() -> int:
    lines = [
        "# API reference (generated)",
        "",
        "One line per public symbol; regenerate with "
        "`python scripts/gen_api_docs.py`.",
        "",
    ]
    seen_in_root = set()
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        names = sorted(getattr(module, "__all__", []))
        if not names:
            continue
        lines.append(f"## `{module_name}`")
        lines.append("")
        lines.append(first_line(module))
        lines.append("")
        for name in names:
            if module_name != "repro" and name in seen_in_root:
                continue  # avoid repeating top-level re-exports
            obj = getattr(module, name)
            if module_name == "repro":
                seen_in_root.add(name)
            lines.append(f"- **`{name}`** ({kind_of(obj)}) — {first_line(obj)}")
        lines.append("")
    out_path = os.path.join(os.path.dirname(__file__), "..", "docs", "API.md")
    with open(os.path.abspath(out_path), "w", encoding="utf-8") as f:
        f.write("\n".join(lines))
    print(f"wrote {os.path.abspath(out_path)} ({len(lines)} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
