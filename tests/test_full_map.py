"""Tests for the indexed full-map oracle and full-map wakeup."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import FullMapWakeup, TreeWakeup
from repro.algorithms.full_map_wakeup import supports
from repro.core import NullOracle, run_wakeup
from repro.encoding import BitString
from repro.network import complete_graph_star, random_connected_gnp, star_graph
from repro.oracles import (
    IndexedFullMapOracle,
    SpanningTreeWakeupOracle,
    decode_indexed_map,
)


class TestDecodeIndexedMap:
    def test_roundtrip(self, k5):
        advice = IndexedFullMapOracle().advise(k5)
        order = sorted(k5.nodes(), key=repr)
        for i, v in enumerate(order):
            decoded = decode_indexed_map(advice[v])
            assert decoded is not None
            tables, own = decoded
            assert own == i
            assert len(tables) == k5.num_nodes
            for j, u in enumerate(order):
                assert len(tables[j]) == k5.degree(u)
                for port, neighbor_idx in enumerate(tables[j]):
                    assert order[neighbor_idx] == k5.neighbor_via(u, port)

    def test_damaged_advice(self):
        assert decode_indexed_map(BitString("")) is None
        assert decode_indexed_map(BitString("1")) is None
        assert decode_indexed_map(BitString("10110101001")) is None

    def test_size_much_larger_than_theorem_21(self, k5):
        big = IndexedFullMapOracle().size_on(k5)
        small = SpanningTreeWakeupOracle().size_on(k5)
        assert big > 10 * small


class TestFullMapWakeup:
    def test_optimal_messages(self, zoo_graph):
        if not supports(zoo_graph):
            pytest.skip("source is not the smallest label")
        result = run_wakeup(zoo_graph, IndexedFullMapOracle(), FullMapWakeup())
        assert result.success
        assert result.messages == zoo_graph.num_nodes - 1

    def test_supports_contract(self):
        assert supports(complete_graph_star(6))
        assert not supports(star_graph(6, center_source=False))

    def test_same_messages_as_theorem_21_more_bits(self):
        g = complete_graph_star(24)
        full = run_wakeup(g, IndexedFullMapOracle(), FullMapWakeup())
        lean = run_wakeup(g, SpanningTreeWakeupOracle(), TreeWakeup())
        assert full.messages == lean.messages == 23
        assert full.oracle_bits > 20 * lean.oracle_bits

    def test_no_advice_degrades(self, k5):
        result = run_wakeup(k5, NullOracle(), FullMapWakeup())
        assert result.completed
        assert not result.success

    def test_wrong_oracle_degrades(self, k5):
        result = run_wakeup(k5, SpanningTreeWakeupOracle(), FullMapWakeup())
        assert result.completed  # no crash; children lists are not a map

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=3, max_value=14),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_random_graphs(self, n, seed):
        rng = random.Random(seed)
        g = random_connected_gnp(n, 0.5, rng, port_order="random")
        assert supports(g)
        result = run_wakeup(g, IndexedFullMapOracle(), FullMapWakeup())
        assert result.success
        assert result.messages == g.num_nodes - 1
