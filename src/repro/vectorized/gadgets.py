"""Implicit ``G_{n,S}`` programs: the Theorem 2.2 gadget at mega scale.

``G_{n,S}`` subdivides ``n`` edges of the complete graph ``K*_n`` — so it
has ``Θ(n²)`` edges, and at ``n = 10^5`` its CSR tables would need ~10¹⁰
slots.  No engine that *materializes* the graph can run it.  But the
tree-wakeup upper bound never touches most of that topology: the
spanning-tree oracle reads the graph only to run a BFS, and the scheme
then walks exactly the ``N - 1`` tree edges.  This module derives that
BFS tree *analytically* from ``(n, S)`` and emits a ``"ports"``-kind
:class:`~repro.vectorized.core.ReplicaProgram` — identical, node for
node and port for port, to what the explicit pipeline
(:func:`~repro.network.constructions.subdivision_family_graph` →
:class:`~repro.oracles.SpanningTreeWakeupOracle` →
:class:`~repro.algorithms.TreeWakeup`) produces, a correspondence pinned
by ``tests/test_engine_properties.py`` at explicit-feasible sizes.

The analytic shortcut rests on the gadget's port structure: at an
original node ``u`` of ``K*_n``, port ``p`` leads toward label
``((u + p) mod n) + 1`` — cyclic order starting at ``u + 1`` — whether or
not that slot was subdivided, and a hidden node ``w_i`` on edge
``{lo, hi}`` has port 0 to ``lo``, port 1 to ``hi``.  BFS from the source
(node 1) therefore discovers, per expanded original node, only *S*-edge
candidates plus whatever original nodes are still undiscovered — after
node 1's single ``O(n)`` sweep, that residue is just the S-neighbors of
the source, so the whole tree costs ``O(n + |S| log |S|)`` for random
``S`` instead of ``Θ(n²)``.

:func:`sample_edge_tuple_sparse` replaces
:func:`~repro.network.constructions.sample_edge_tuple` above explicit
scale: the latter enumerates all ``Θ(n²)`` edges to sample ``n`` of them.
Rejection sampling draws the same uniform distribution over ordered
tuples of distinct edges but *not* the same sequence for a given seed —
cross-validation against the explicit path must share the edge tuple, not
the seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..encoding import children_ports_code_length
from ..network.builders import resolve_rng
from ..network.graph import Edge, GraphError
from .core import ReplicaProgram, run_batch

__all__ = [
    "sample_edge_tuple_sparse",
    "gadget_spanning_program",
    "MegaGadgetRow",
    "mega_gadget_wakeup",
]

_I64 = np.int64


def sample_edge_tuple_sparse(
    n: int,
    count: int,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> List[Edge]:
    """``count`` distinct edges of ``K*_n``, uniform over ordered tuples.

    Same distribution as
    :func:`~repro.network.constructions.sample_edge_tuple`, but by
    rejection instead of enumerating all ``binom(n, 2)`` edges —
    ``O(count)`` expected when ``count = O(n)``.  Different draw sequence
    for a given seed than the dense sampler.
    """
    m = n * (n - 1) // 2
    if count > m:
        raise GraphError(f"cannot pick {count} distinct edges from K*_{n}")
    rng = resolve_rng(rng, seed)
    seen = set()
    out: List[Edge] = []
    while len(out) < count:
        u = rng.randrange(1, n + 1)
        v = rng.randrange(1, n + 1)
        if u == v:
            continue
        edge = (u, v) if u < v else (v, u)
        if edge in seen:
            continue
        seen.add(edge)
        out.append(edge)
    return out


def _gadget_tree(n: int, edge_tuple) -> Dict[int, Tuple[int, int, int]]:
    """BFS spanning tree of ``G_{n,S}``: child -> (parent, port@parent, port@child).

    Reproduces :func:`~repro.oracles.build_spanning_tree` (``kind="bfs"``)
    on the never-materialized gadget: level-synchronous, frontier in
    discovery order, each expansion's neighbors in port order.  Original
    labels are ``1..n``; the hidden node on the ``i``-th edge of ``S`` is
    ``n + i``.
    """
    skey: Dict[Tuple[int, int], int] = {}
    w_edge: Dict[int, Tuple[int, int]] = {}
    s_adj: Dict[int, List[Tuple[int, int]]] = {}
    for i, (u, v) in enumerate(edge_tuple, start=1):
        lo, hi = (u, v) if u < v else (v, u)
        if (lo, hi) in skey:
            raise GraphError("edges to subdivide must be distinct")
        w = n + i
        skey[(lo, hi)] = w
        w_edge[w] = (lo, hi)
        s_adj.setdefault(lo, []).append((hi, w))
        s_adj.setdefault(hi, []).append((lo, w))

    undisc_orig = set(range(2, n + 1))
    undisc_w = set(w_edge)
    links: Dict[int, Tuple[int, int, int]] = {}
    frontier = [1]
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            if u <= n:
                # An original node: candidates are the undiscovered
                # originals reachable through intact edges, plus the
                # undiscovered hidden nodes on its own S-edges — each at
                # the cyclic port the K*_n slot would have used.
                cand: List[Tuple[int, int, int]] = []
                for j in sorted(undisc_orig):
                    edge = (u, j) if u < j else (j, u)
                    if edge in skey:
                        continue
                    cand.append(((j - u - 1) % n, j, (u - j - 1) % n))
                for v, w in s_adj.get(u, ()):
                    if w in undisc_w:
                        cand.append(((v - u - 1) % n, w, 0 if u < v else 1))
                cand.sort()
                for pport, x, cport in cand:
                    if x <= n:
                        undisc_orig.discard(x)
                    else:
                        undisc_w.discard(x)
                    links[x] = (u, pport, cport)
                    nxt.append(x)
            else:
                lo, hi = w_edge[u]
                for pport, x, other in ((0, lo, hi), (1, hi, lo)):
                    if x in undisc_orig:
                        undisc_orig.discard(x)
                        links[x] = (u, pport, (other - x - 1) % n)
                        nxt.append(x)
        frontier = nxt
        # Rebuild to a right-sized table: a set emptied by discard keeps
        # its old capacity, and iterating it per expansion above would
        # scan every stale slot — turning the O(n) sweep quadratic.
        undisc_orig = set(undisc_orig)
    if undisc_orig or undisc_w:
        raise GraphError("G_{n,S} came out disconnected; bad edge tuple")
    return links


def gadget_spanning_program(
    n: int,
    edge_tuple,
    max_messages: Optional[int] = None,
    max_steps: Optional[int] = None,
) -> Tuple[ReplicaProgram, int]:
    """The tree-wakeup run on ``G_{n,S}`` as a ``"ports"`` replica.

    Returns ``(program, oracle_bits)`` where ``oracle_bits`` is exactly
    what ``SpanningTreeWakeupOracle("bfs").predicted_size`` would report
    on the explicit graph — the same per-node
    :func:`~repro.encoding.children_ports_code_length` sum over the same
    BFS tree.
    """
    count = len(edge_tuple)
    N = n + count
    links = _gadget_tree(n, edge_tuple)
    children: Dict[int, List[Tuple[int, int, int]]] = {}
    for child, (par, pport, cport) in links.items():
        children.setdefault(par, []).append((pport, child, cport))

    send_counts = np.zeros(N, dtype=_I64)
    dest: List[int] = []
    aport: List[int] = []
    oracle_bits = 0
    for idx in range(N):
        # children_port_map sorts ports ascending, which is also the
        # decode order of encode_children_ports — so the send list below
        # is the order the scheme would emit.
        ch = sorted(children.get(idx + 1, ()))
        send_counts[idx] = len(ch)
        oracle_bits += children_ports_code_length(len(ch), N)
        for _pport, child, cport in ch:
            dest.append(child - 1)
            aport.append(cport)

    # repr ranks of the integer labels 1..N (decimal-string order), the
    # same ranks VectorTopology would derive from the explicit graph.
    rank = np.unique(np.arange(1, N + 1).astype(str), return_inverse=True)[1].astype(
        _I64
    )
    init_active = np.zeros(N, dtype=bool)
    init_active[0] = True  # node 1, the source, at dense index 0
    program = ReplicaProgram(
        num_nodes=N,
        kind="ports",
        rank=rank,
        init_active=init_active,
        init_informed=init_active.copy(),
        max_messages=max_messages,
        max_steps=max_steps,
        send_counts=send_counts,
        send_dest=np.array(dest, dtype=_I64),
        send_aport=np.array(aport, dtype=_I64),
    )
    return program, oracle_bits


@dataclass(frozen=True)
class MegaGadgetRow:
    """One mega-scale ``G_{n,S}`` tree-wakeup measurement.

    ``flooding_messages`` is the exact zero-advice cost ``2m - N + 1`` on
    the same graph — the ``Θ(n²)`` side of the Theorem 2.2 separation,
    computed analytically since nobody can afford to run it.
    """

    n: int
    seed: int
    gadget_nodes: int
    gadget_edges: int
    oracle_bits: int
    messages: int
    rounds: int
    success: bool
    flooding_messages: int

    @property
    def bits_per_node_log(self) -> float:
        """``oracle_bits / (N log2 N)`` — Theorem 2.1 predicts O(1)."""
        return self.oracle_bits / (self.gadget_nodes * math.log2(self.gadget_nodes))

    @property
    def messages_per_node(self) -> float:
        return self.messages / self.gadget_nodes


def _row_from_counters(n: int, seed: int, oracle_bits: int, rc) -> MegaGadgetRow:
    count = rc.informed_step.size - n
    N = n + count
    informed = int(np.count_nonzero(rc.informed_step >= 0)) + 1  # + the source
    m = n * (n - 1) // 2 + count
    return MegaGadgetRow(
        n=n,
        seed=seed,
        gadget_nodes=N,
        gadget_edges=m,
        oracle_bits=oracle_bits,
        messages=rc.messages_sent,
        rounds=rc.rounds,
        success=rc.completed and informed == N,
        flooding_messages=2 * m - N + 1,
    )


def mega_gadget_wakeup(n: int, seed: int = 0) -> MegaGadgetRow:
    """Tree wakeup on a random ``G_{n,S}`` without materializing it.

    Feasible to ``n = 10^6`` on one core: the graph is implicit, the tree
    is derived analytically, and the run is ``N - 1`` messages through
    the vectorized core.
    """
    edge_tuple = sample_edge_tuple_sparse(n, n, seed=seed)
    program, oracle_bits = gadget_spanning_program(n, edge_tuple)
    rc = run_batch([program])[0]
    return _row_from_counters(n, seed, oracle_bits, rc)
