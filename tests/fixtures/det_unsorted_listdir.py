"""Known-bad fixture for DET005: directory listing in filesystem order."""

import os


def result_files(run_dir):
    return [name for name in os.listdir(run_dir) if name.endswith(".json")]
