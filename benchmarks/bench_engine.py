"""The compiled simulation core, measured.

Three claims, each timed and asserted:

* **Per-delivery cost** — the flat-array fast path
  (:mod:`repro.fastpath`) delivers messages at least 2x cheaper than the
  legacy dict-walking loop on the paper's hard family (subdivided
  ``K*_n``), at ``trace_level="full"`` — i.e. while still producing the
  byte-identical ``ExecutionTrace``.  ``trace_level="counters"`` is
  cheaper still.  All three paths must agree on the delivered-message
  count (the cheap end of the byte-identity contract; the full contract
  lives in ``tests/test_fastpath.py``).
* **Vectorized lane** — the struct-of-arrays engine
  (:mod:`repro.vectorized`) beats the fastpath *counters* baseline by at
  least 5x per delivery on ``kstar_96``, and the multi-seed batch mode
  (five implicit ``G_{n,S}`` replicas through one array pass) is cheaper
  still.  The identity contract lives in ``tests/test_differential.py``.
* **Advice throughput** — oracle advice construction (light-tree MST
  and spanning-tree BFS encodings) is timed per advised bit, so an
  encoding-layer regression shows up here even though it is not on the
  engine fast path.

Timings are wall-clock on whatever host runs this — the committed
``BENCH_engine.json`` records the CPU count (CI containers are often
single-CPU, which is fine: per-delivery cost is single-threaded by
nature).  Ratios between paths are hardware-independent enough to
assert; absolute nanoseconds are recorded, not asserted.
"""

import os
import random
import time

from conftest import run_once

from repro.algorithms.flooding import Flooding
from repro.core.oracle import NullOracle
from repro.encoding.codes import encode_paired_list
from repro.network.constructions import (
    complete_graph_star,
    sample_edge_tuple,
    subdivision_family_graph,
)
from repro.oracles.light_tree import LightTreeBroadcastOracle
from repro.oracles.spanning_tree import SpanningTreeWakeupOracle
from repro.simulator.engine import Simulation

#: (name, builder) — the paper's dense star family and the Theorem 2.2
#: lower-bound gadget at the largest size the seed tests exercise.
GRAPHS = (
    ("kstar_96", lambda: complete_graph_star(96)),
    (
        "subdivided_kstar_64",
        lambda: subdivision_family_graph(
            64, sample_edge_tuple(64, 64, random.Random(0))
        ),
    ),
)
REPS = 5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _flood_sim(graph, trace_level, engine="auto"):
    advice = NullOracle().advise(graph)
    algorithm = Flooding()
    schemes = {
        v: algorithm.scheme_for(advice[v], v == graph.source, v, graph.degree(v))
        for v in graph.nodes()
    }
    return Simulation(
        graph, schemes, advice=advice, trace_level=trace_level, engine=engine
    )


def _per_delivery_ns(graph, trace_level, fastpath: bool) -> dict:
    """Best-case ns per delivered message for Flooding under one engine path.

    Only ``Simulation.run`` is inside the timed region; graph build,
    advice, and scheme construction are shared setup.  One untimed warmup
    run absorbs cold dict/allocator state, and the minimum over ``REPS``
    timed runs is reported — per-op cost is a floor measurement, and the
    mean on a shared CI host mostly measures the neighbours.  The
    environment toggle is the same ``REPRO_FASTPATH=0`` escape hatch
    users get.
    """
    previous = os.environ.get("REPRO_FASTPATH")
    os.environ["REPRO_FASTPATH"] = "1" if fastpath else "0"
    try:
        _flood_sim(graph, trace_level).run()  # warmup, untimed
        best_s = float("inf")
        for _ in range(REPS):
            sim = _flood_sim(graph, trace_level)
            start = time.perf_counter()
            trace = sim.run()
            best_s = min(best_s, time.perf_counter() - start)
    finally:
        if previous is None:
            del os.environ["REPRO_FASTPATH"]
        else:
            os.environ["REPRO_FASTPATH"] = previous
    return {
        "ns_per_delivery": best_s / trace.delivered * 1e9,
        "delivered": trace.delivered,
        "completed": trace.completed,
    }


def _compare_engine_paths():
    outcome = {"cpus": _usable_cpus(), "reps": REPS}
    for name, build in GRAPHS:
        graph = build().freeze()
        legacy = _per_delivery_ns(graph, "full", fastpath=False)
        fast = _per_delivery_ns(graph, "full", fastpath=True)
        counters = _per_delivery_ns(graph, "counters", fastpath=True)
        assert legacy["delivered"] == fast["delivered"] == counters["delivered"], (
            f"{name}: engine paths disagree on delivered count"
        )
        assert legacy["completed"] and fast["completed"] and counters["completed"]
        outcome[f"{name}_delivered"] = fast["delivered"]
        outcome[f"{name}_legacy_ns"] = legacy["ns_per_delivery"]
        outcome[f"{name}_fast_ns"] = fast["ns_per_delivery"]
        outcome[f"{name}_counters_ns"] = counters["ns_per_delivery"]
        outcome[f"{name}_speedup_full"] = (
            legacy["ns_per_delivery"] / fast["ns_per_delivery"]
        )
        outcome[f"{name}_speedup_counters"] = (
            legacy["ns_per_delivery"] / counters["ns_per_delivery"]
        )
    return outcome


def _advice_throughput():
    graph = complete_graph_star(96).freeze()
    outcome = {}
    for key, oracle in (
        ("light_tree", LightTreeBroadcastOracle()),
        ("spanning_tree", SpanningTreeWakeupOracle()),
    ):
        start = time.perf_counter()
        for _ in range(REPS):
            advice = oracle.advise(graph)
        elapsed = time.perf_counter() - start
        bits = advice.total_bits()
        outcome[f"{key}_bits"] = bits
        outcome[f"{key}_ms_per_advise"] = elapsed / REPS * 1e3
        outcome[f"{key}_bits_per_s"] = bits * REPS / elapsed
    # The paired-code encoder feeds both oracles; time it standalone so an
    # encoding regression is attributable without re-running an oracle.
    weights = list(range(1, 513))
    start = time.perf_counter()
    for _ in range(REPS * 10):
        encoded = encode_paired_list(weights)
    elapsed = time.perf_counter() - start
    outcome["paired_list_bits"] = len(encoded)
    outcome["paired_list_us_per_call"] = elapsed / (REPS * 10) * 1e6
    return outcome


def _vectorized_per_delivery_ns(graph, trace_level) -> dict:
    """Best-case ns per delivery with the engine pinned to ``vectorized``.

    Same floor-measurement protocol as :func:`_per_delivery_ns`; the pin
    goes through the ``engine=`` parameter rather than the environment
    (both routes exist — this is the one sweep code uses).
    """
    _flood_sim(graph, trace_level, engine="vectorized").run()  # warmup
    best_s = float("inf")
    for _ in range(REPS):
        sim = _flood_sim(graph, trace_level, engine="vectorized")
        start = time.perf_counter()
        trace = sim.run()
        best_s = min(best_s, time.perf_counter() - start)
    return {
        "ns_per_delivery": best_s / trace.delivered * 1e9,
        "delivered": trace.delivered,
        "completed": trace.completed,
    }


def _compare_vectorized_paths():
    """Vectorized counters lane vs the fastpath counters baseline, plus
    the multi-seed batch mode on implicit mega gadgets."""
    from repro.vectorized import run_batch
    from repro.vectorized.gadgets import (
        gadget_spanning_program,
        sample_edge_tuple_sparse,
    )

    outcome = {"cpus": _usable_cpus(), "reps": REPS}
    for name, build in GRAPHS:
        graph = build().freeze()
        fast = _per_delivery_ns(graph, "counters", fastpath=True)
        vec = _vectorized_per_delivery_ns(graph, "counters")
        assert fast["delivered"] == vec["delivered"], (
            f"{name}: vectorized delivered count diverged"
        )
        assert fast["completed"] and vec["completed"]
        outcome[f"{name}_delivered"] = vec["delivered"]
        outcome[f"{name}_fast_counters_ns"] = fast["ns_per_delivery"]
        outcome[f"{name}_vectorized_ns"] = vec["ns_per_delivery"]
        outcome[f"{name}_vectorized_speedup"] = (
            fast["ns_per_delivery"] / vec["ns_per_delivery"]
        )
    # Batch multi-seed mode: five implicit G_{n,S} replicas through one
    # array pass.  Program construction (sampling, analytic BFS) is
    # setup; only the batched run is timed.
    n, seeds = 20_000, (0, 1, 2, 3, 4)
    programs = []
    for seed in seeds:
        edge_tuple = sample_edge_tuple_sparse(n, n, seed=seed)
        programs.append(gadget_spanning_program(n, edge_tuple)[0])
    run_batch(programs)  # warmup
    best_s = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        counters = run_batch(programs)
        best_s = min(best_s, time.perf_counter() - start)
    delivered = sum(rc.delivered for rc in counters)
    assert all(rc.completed for rc in counters)
    assert delivered == len(seeds) * (2 * n - 1)  # N - 1 each, N = 2n
    outcome["mega_batch_n"] = n
    outcome["mega_batch_replicas"] = len(seeds)
    outcome["mega_batch_delivered"] = delivered
    outcome["mega_batch_ns"] = best_s / delivered * 1e9
    return outcome


def test_engine_per_delivery(benchmark):
    outcome = run_once(benchmark, _compare_engine_paths)
    for key, value in outcome.items():
        benchmark.extra_info[key] = value
    assert outcome["subdivided_kstar_64_speedup_full"] >= 2.0, (
        "fast path only "
        f"{outcome['subdivided_kstar_64_speedup_full']:.2f}x cheaper per "
        "delivery on the subdivided gadget at trace_level='full'"
    )
    assert (
        outcome["subdivided_kstar_64_speedup_counters"]
        >= outcome["subdivided_kstar_64_speedup_full"]
    ), "counters mode should never be slower than full-trace mode"


def test_vectorized_per_delivery(benchmark):
    outcome = run_once(benchmark, _compare_vectorized_paths)
    for key, value in outcome.items():
        benchmark.extra_info[key] = value
    assert outcome["kstar_96_vectorized_speedup"] >= 5.0, (
        "vectorized counters lane only "
        f"{outcome['kstar_96_vectorized_speedup']:.2f}x cheaper per delivery "
        "than the fastpath counters baseline on kstar_96"
    )
    # The batch mode's whole point is that per-delivery cost at mega
    # scale undercuts even the single-graph vectorized runs above.
    assert outcome["mega_batch_ns"] < outcome["kstar_96_fast_counters_ns"], (
        "mega batch mode is not cheaper per delivery than the scalar "
        "fastpath counters baseline"
    )


def test_advice_throughput(benchmark):
    outcome = run_once(benchmark, _advice_throughput)
    for key, value in outcome.items():
        benchmark.extra_info[key] = value
    # Theta(n log n) bits on K*_96: sanity-pin the sizes so a throughput
    # number can never silently describe a different workload.
    assert outcome["light_tree_bits"] > 0
    assert outcome["spanning_tree_bits"] > 0
