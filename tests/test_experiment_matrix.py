"""Smoke matrix: every registered experiment runs at minimum viable size.

Each E1-E14 registry entry is invoked once with the smallest parameters
its machinery accepts, and must produce at least one non-skipped row.
The matrix is keyed off :data:`repro.analysis.EXPERIMENTS` itself, with a
coverage test that fails the moment a new experiment is registered
without a matrix entry — the grid can't silently under-cover.
"""

import pytest

from repro.analysis import EXPERIMENTS, run_experiment
from repro.parallel import ConstructionCache

#: Minimum-viable keyword arguments, per experiment.  Chosen so the whole
#: matrix stays in smoke-test territory (seconds, not minutes) while still
#: driving every experiment's real machinery end to end.
MATRIX = {
    "E1": {"sizes": (8,), "families": ("path",)},
    "E2": {"gadget_sizes": (8,), "counting_exponents": (10,), "alphas": (0.2,)},
    "E3": {"sizes": (8,), "families": ("path",)},
    "E4": {"sizes": (8,), "families": ("path",)},
    "E5": {"n": 16, "k": 4, "counting_pairs": ((2**16, 2),)},
    "E6": {"sizes": (4, 8, 16), "family": "complete"},
    "E7": {"n": 8, "families": ("complete",), "schedulers": ("sync",)},
    "E8": {"exponents": (8,), "subdivided_factors": (1,)},
    "E9": {"n": 8, "families": ("complete",)},
    "E10": {"sizes": (8,), "families": ("complete",)},
    "E11": {"sizes": (8,), "families": ("complete",)},
    "E12": {"sizes": (8,), "families": ("complete",)},
    "E13": {"sizes": (8,), "families": ("complete",)},
    # E14's findings compare against the complete-graph row, so it must stay
    "E14": {"n": 8, "families": ("cycle", "complete")},
    "E15": {"n_values": (16, 32), "seeds": (0,)},
}


def test_matrix_covers_exactly_the_registry():
    """A new registry entry must come with a smoke-matrix row."""
    assert set(MATRIX) == set(EXPERIMENTS)


@pytest.mark.parametrize("experiment_id", sorted(MATRIX, key=lambda e: int(e[1:])))
def test_experiment_smoke(experiment_id):
    result = run_experiment(experiment_id, **MATRIX[experiment_id])
    assert result.experiment == experiment_id
    assert result.title
    measured = [r for r in result.rows if not r.get("skipped")]
    assert measured, f"{experiment_id} produced no non-skipped rows"


def test_cache_aware_experiments_accept_shared_cache():
    """The cache-threaded experiments all run against one shared cache."""
    cache = ConstructionCache()
    for eid in ("E1", "E3", "E4"):
        result = run_experiment(eid, cache=cache, **MATRIX[eid])
        assert any(not r.get("skipped") for r in result.rows)
    # E1, E3 and E4 all use the path-8 graph: one build, the rest hits.
    assert cache.stats.misses >= 1
    assert cache.stats.hits >= 2
