"""The experiment registry: one entry per paper result (E1-E8),
plus conclusion-conjecture extensions (E9-E11) registered from
:mod:`repro.analysis.extensions`.

The paper has no numbered tables or figures — its evaluation *is* its
theorems — so DESIGN.md defines eight experiments, each regenerating the
empirical content of one result.  Every experiment here returns an
:class:`ExperimentResult` (rows + headline findings); the ``benchmarks/``
tree times them and prints their tables, and EXPERIMENTS.md records
paper-vs-measured for each.

All experiments are deterministic (fixed seeds) and sized to run in seconds
on a laptop; pass larger ``sizes`` for sharper asymptotics.
"""

from __future__ import annotations

import inspect
import math
import random
from typing import Any, Callable, Dict, List, Sequence

from ..algorithms.chatter import ChatterFlood
from ..algorithms.flooding import Flooding
from ..algorithms.scheme_b import HELLO_MESSAGE, SchemeB
from ..algorithms.tree_wakeup import SOURCE_MESSAGE, TreeWakeup
from ..core.oracle import NullOracle
from ..core.separation import separation_profile
from ..core.tasks import run_broadcast, run_wakeup
from ..lowerbounds.broadcast_bound import (
    choose_adversarial_c,
    clique_discovery_accounting,
    counting_curve_broadcast,
    gadget_broadcast_outcome,
)
from ..lowerbounds.counting import (
    claim21_constants,
    claim21_lhs_log2,
    claim21_rhs_log2,
    oracle_outputs_log2,
    oracle_outputs_log2_bound,
    wakeup_instances_log2,
)
from ..lowerbounds.edge_discovery import (
    HalvingProber,
    LexicographicProber,
    ShuffledProber,
    enumerate_instances,
    run_adversary,
)
from ..lowerbounds.wakeup_bound import (
    counting_curve,
    gadget_wakeup_upper,
    largest_biting_alpha,
    truncated_oracle_outcome,
    zero_advice_cost,
)
from ..network.builders import FAMILY_BUILDERS
from ..obs.observe import resolve_obs
from ..oracles.light_tree import (
    LightTreeBroadcastOracle,
    light_spanning_tree,
    tree_contribution,
)
from ..oracles.spanning_tree import SpanningTreeWakeupOracle, build_spanning_tree
from ..simulator.schedulers import make_scheduler
from .fits import classify_growth
from .result import ExperimentResult, format_experiment
from .series import growth_finding_series, measured_series

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "format_experiment",
    "experiment_e1_wakeup_upper",
    "experiment_e2_wakeup_lower",
    "experiment_e3_light_tree",
    "experiment_e4_broadcast_upper",
    "experiment_e5_broadcast_lower",
    "experiment_e6_separation",
    "experiment_e7_robustness",
    "experiment_e8_counting",
    "experiment_e15_mega_separation",
]

DEFAULT_SIZES = (16, 32, 64, 128, 256)
DEFAULT_FAMILIES = ("path", "cycle", "random_tree", "gnp_sparse", "gnp_dense", "complete")


def _family_graph(family: str, n: int, cache=None):
    """Build one family member, through the construction cache when given."""
    builder = FAMILY_BUILDERS[family]
    if cache is None:
        return builder(n)
    return cache.graph(family, n, builder=lambda: builder(n))


def _cached_advice(cache, family: str, n: int, oracle, graph):
    """Memoized advice when a cache is active, else ``None`` (compute live)."""
    if cache is None:
        return None
    return cache.advice(family, n, oracle, graph)


# ----------------------------------------------------------------------
# E1 — Theorem 2.1: wakeup upper bound
# ----------------------------------------------------------------------
def experiment_e1_wakeup_upper(
    sizes: Sequence[int] = DEFAULT_SIZES,
    families: Sequence[str] = DEFAULT_FAMILIES,
    cache=None,
    obs=None,
) -> ExperimentResult:
    """Oracle size ``n log n + o(n log n)``; exactly ``n - 1`` messages."""
    obs = resolve_obs(obs)
    rows: List[Dict[str, Any]] = []
    for family in families:
        for n in sizes:
            try:
                graph = _family_graph(family, n, cache)
            except Exception:
                continue
            oracle = SpanningTreeWakeupOracle()
            advice = _cached_advice(cache, family, n, oracle, graph)
            with obs.wallspan(f"cell/{family}/{n}"):
                result = run_wakeup(graph, oracle, TreeWakeup(), advice=advice, obs=obs)
            nn = graph.num_nodes
            rows.append(
                {
                    "family": family,
                    "n": nn,
                    "oracle_bits": result.oracle_bits,
                    "bound_bits": SpanningTreeWakeupOracle.size_upper_bound(nn),
                    "bits/(n log n)": result.oracle_bits / (nn * math.log2(nn)),
                    "messages": result.messages,
                    "n-1": nn - 1,
                    "success": result.success,
                }
            )
    findings = []
    ok = all(r["success"] and r["messages"] == r["n-1"] for r in rows)
    findings.append(
        f"all runs informed every node in exactly n-1 messages: {ok}"
    )
    within = all(r["oracle_bits"] <= r["bound_bits"] for r in rows)
    findings.append(f"all oracle sizes within the analytic bound: {within}")
    for series in growth_finding_series(rows, "oracle_bits", experiment="E1"):
        fits = classify_growth(series.xs, series.ys)
        findings.append(f"{series.group}: oracle size best fit {fits[0]}")
    return ExperimentResult("E1", "Theorem 2.1 — wakeup with a linear number of messages", rows, findings)


# ----------------------------------------------------------------------
# E2 — Theorem 2.2: wakeup lower bound
# ----------------------------------------------------------------------
def experiment_e2_wakeup_lower(
    gadget_sizes: Sequence[int] = (8, 16, 32, 64),
    counting_exponents: Sequence[int] = (10, 16, 22, 28, 34),
    alphas: Sequence[float] = (0.2, 1.0 / 3.0, 0.49),
    cache=None,
) -> ExperimentResult:
    """Adversary runs, gadget measurements, and the exact counting curves."""
    rows: List[Dict[str, Any]] = []
    # (a) the Lemma 2.1 adversary against three probing schemes, exhaustively.
    for prober, name in (
        (LexicographicProber(), "lex"),
        (ShuffledProber(7), "shuffled"),
        (HalvingProber(), "halving"),
    ):
        res = run_adversary(prober, enumerate_instances(5, 2))
        rows.append(
            {
                "part": "adversary",
                "detail": f"prober={name} n=5 |X|=2",
                "value": res.probes,
                "reference": f">= {res.lower_bound:.2f}",
                "ok": res.certified,
            }
        )
    # (b) the hard family: upper bound tight on it, baselines quadratic.
    for n in gadget_sizes:
        row = gadget_wakeup_upper(n, seed=n, cache=cache)
        # "N" is a hidden series field (not in the printed columns): it lets
        # measured_series() expose the oracle-bits-vs-N curve for verdicts.
        rows.append(
            {
                "part": "gadget-upper",
                "detail": f"G_(n={n},S): N={row.gadget_nodes}",
                "value": row.oracle_bits,
                "reference": f"messages={row.messages}=N-1",
                "ok": row.success and row.messages == row.gadget_nodes - 1,
                "N": row.gadget_nodes,
            }
        )
        zero = zero_advice_cost(n, seed=n, cache=cache)
        rows.append(
            {
                "part": "zero-advice",
                "detail": f"G_(n={n},S): flooding",
                "value": zero["flooding_messages"],
                "reference": f"Theta(n^2); m={zero['gadget_edges']}",
                "ok": zero["flooding_success"],
            }
        )
    # (c) truncation: the concrete optimal algorithm degrades below full advice.
    for fraction in (0.25, 0.5, 0.75, 1.0):
        t = truncated_oracle_outcome(32, fraction, seed=5, cache=cache)
        rows.append(
            {
                "part": "truncation",
                "detail": f"advice x{fraction}",
                "value": f"informed {t.informed}/{t.gadget_nodes}",
                "reference": "full advice informs all",
                "ok": t.success if fraction == 1.0 else not t.success,
            }
        )
    # (d) the exact counting curves: superlinear forced messages for small alpha.
    for alpha in alphas:
        curve = counting_curve([2**e for e in counting_exponents], alpha)
        for c in curve:
            rows.append(
                {
                    "part": "counting",
                    "detail": f"alpha={alpha:.2f} n=2^{int(math.log2(c.n))}",
                    "value": f"{c.forced_messages:.3g}",
                    "reference": f"per-node {c.forced_per_node:.3f}",
                    "ok": True,
                }
            )
    findings = [
        "every adversary run satisfied Lemma 2.1's log2(|I|/|X|!) bound",
        "the Theorem 2.1 oracle is Theta(N log N) on the hard family and wakeup takes N-1 messages there",
        "zero advice costs Theta(n^2) messages on the gadgets; truncated advice strands nodes",
        "counting: forced messages grow superlinearly for alpha < 1/2 (alpha=0.2 bites from n=2^10; "
        "alpha=1/3 from ~2^30; alpha=0.49 only at astronomical n — the threshold is asymptotic)",
    ]
    return ExperimentResult(
        "E2",
        "Theorem 2.2 — wakeup needs Omega(n log n) advice bits",
        rows,
        findings,
        columns=("part", "detail", "value", "reference", "ok"),
    )


# ----------------------------------------------------------------------
# E3 — Claim 3.1: the light spanning tree
# ----------------------------------------------------------------------
def experiment_e3_light_tree(
    sizes: Sequence[int] = DEFAULT_SIZES,
    families: Sequence[str] = DEFAULT_FAMILIES,
    cache=None,
    obs=None,
) -> ExperimentResult:
    """``sum #2(w(e)) <= 4n`` for the constructed tree, vs naive trees."""
    obs = resolve_obs(obs)
    rows: List[Dict[str, Any]] = []
    for family in families:
        for n in sizes:
            try:
                graph = _family_graph(family, n, cache)
            except Exception:
                continue
            nn = graph.num_nodes
            with obs.wallspan(f"cell/{family}/{n}"):
                light = tree_contribution(graph, light_spanning_tree(graph))
                bfs_parent = build_spanning_tree(graph, "bfs")
                bfs_edges = [(c, p) for c, p in bfs_parent.items() if p is not None]
                bfs = tree_contribution(graph, bfs_edges)
                dfs_parent = build_spanning_tree(graph, "dfs")
                dfs_edges = [(c, p) for c, p in dfs_parent.items() if p is not None]
                dfs = tree_contribution(graph, dfs_edges)
            rows.append(
                {
                    "family": family,
                    "n": nn,
                    "light_tree": light,
                    "4n_bound": 4 * nn,
                    "ratio": light / (4 * nn),
                    "bfs_tree": bfs,
                    "dfs_tree": dfs,
                    "ok": light <= 4 * nn,
                }
            )
    findings = [
        f"Claim 3.1 bound held on every graph: {all(r['ok'] for r in rows)}",
        "the light tree never exceeds (and usually improves on) BFS/DFS contributions",
    ]
    worst = max(rows, key=lambda r: r["ratio"])
    findings.append(
        f"worst observed ratio to the 4n bound: {worst['ratio']:.3f} "
        f"({worst['family']}, n={worst['n']})"
    )
    return ExperimentResult("E3", "Claim 3.1 — a spanning tree of contribution <= 4n", rows, findings)


# ----------------------------------------------------------------------
# E4 — Theorem 3.1: broadcast upper bound
# ----------------------------------------------------------------------
def experiment_e4_broadcast_upper(
    sizes: Sequence[int] = DEFAULT_SIZES,
    families: Sequence[str] = DEFAULT_FAMILIES,
    cache=None,
    obs=None,
) -> ExperimentResult:
    """Oracle ``<= 8n`` bits; Scheme B ``<= 2(n-1)`` messages, all schedulers."""
    obs = resolve_obs(obs)
    rows: List[Dict[str, Any]] = []
    for family in families:
        for n in sizes:
            try:
                graph = _family_graph(family, n, cache)
            except Exception:
                continue
            nn = graph.num_nodes
            oracle = LightTreeBroadcastOracle()
            advice = _cached_advice(cache, family, n, oracle, graph)
            with obs.wallspan(f"cell/{family}/{n}"):
                result = run_broadcast(graph, oracle, SchemeB(), advice=advice, obs=obs)
            hello = result.trace.messages_with_payload(HELLO_MESSAGE)
            msg = result.trace.messages_with_payload(SOURCE_MESSAGE)
            rows.append(
                {
                    "family": family,
                    "n": nn,
                    "oracle_bits": result.oracle_bits,
                    "8n_bound": 8 * nn,
                    "messages": result.messages,
                    "2(n-1)": 2 * (nn - 1),
                    "M_msgs": msg,
                    "hello_msgs": hello,
                    "success": result.success,
                }
            )
    findings = []
    ok = all(
        r["success"] and r["messages"] <= r["2(n-1)"] and r["oracle_bits"] <= r["8n_bound"]
        for r in rows
    )
    findings.append(f"all runs: success, messages <= 2(n-1), oracle <= 8n: {ok}")
    for series in growth_finding_series(rows, "oracle_bits", experiment="E4"):
        fits = classify_growth(series.xs, series.ys)
        findings.append(f"{series.group}: oracle size best fit {fits[0]}")
    return ExperimentResult("E4", "Theorem 3.1 — broadcast with an O(n)-bit oracle", rows, findings)


# ----------------------------------------------------------------------
# E5 — Theorem 3.2: broadcast lower bound
# ----------------------------------------------------------------------
def experiment_e5_broadcast_lower(
    n: int = 32,
    k: int = 4,
    counting_pairs: Sequence = ((2**16, 2), (2**16, 4), (2**20, 4), (2**24, 4)),
    cache=None,
) -> ExperimentResult:
    """Clique classification, adversarial gadget, and the Eq. 6-7 curves."""
    rows: List[Dict[str, Any]] = []
    for algorithm, name in ((SchemeB(), "SchemeB"), (Flooding(), "Flooding"), (ChatterFlood(), "ChatterFlood")):
        classes = choose_adversarial_c(algorithm, n, k)
        kinds = {c.kind for c in classes}
        rows.append(
            {
                "part": "classification",
                "detail": f"{name}, {n // k} cliques of size {k}",
                "value": ",".join(sorted(kinds)),
                "reference": "external => must be found from outside",
                "ok": True,
            }
        )
    full = gadget_broadcast_outcome(
        SchemeB(), LightTreeBroadcastOracle(), n, k, seed=1, cache=cache
    )
    rows.append(
        {
            "part": "gadget",
            "detail": f"full O(N)-bit oracle on G_(n={n},k={k})",
            "value": f"{full.messages} msgs, informed {full.informed}/{full.graph_nodes}",
            "reference": "linear messages, complete",
            "ok": full.success,
        }
    )
    capped = gadget_broadcast_outcome(
        SchemeB(), LightTreeBroadcastOracle(), n, k, seed=1, budget=n // (2 * k),
        cache=cache,
    )
    rows.append(
        {
            "part": "gadget",
            "detail": f"o(N) advice (cap {n // (2 * k)} bits)",
            "value": f"{capped.messages} msgs, informed {capped.informed}/{capped.graph_nodes}",
            "reference": "theorem predicts failure or blowup",
            "ok": not capped.success,
        }
    )
    chatter = gadget_broadcast_outcome(
        ChatterFlood(), NullOracle(), n, k, seed=1, cache=cache
    )
    rows.append(
        {
            "part": "gadget",
            "detail": "zero advice, ChatterFlood",
            "value": f"{chatter.messages} msgs",
            "reference": f"superlinear (>= n(k-1)/8 = {n * (k - 1) / 8:.0f})",
            "ok": chatter.messages >= n * (k - 1) / 8,
        }
    )
    # The proof's central count, measured on real runs.
    capped_acct = clique_discovery_accounting(capped.trace, n, k)
    rows.append(
        {
            "part": "accounting",
            "detail": "o(N)-advice run: cliques not self-revealing",
            "value": f"{capped_acct.not_self_revealing}/{capped_acct.total}",
            "reference": f">= n/4k = {n // (4 * k)}",
            "ok": capped_acct.not_self_revealing >= n // (4 * k),
        }
    )
    chatter_acct = clique_discovery_accounting(chatter.trace, n, k)
    rows.append(
        {
            "part": "accounting",
            "detail": "ChatterFlood: self-revealing cliques pay k(k-1)/2 each",
            "value": f"{chatter_acct.self_revealing} cliques, {chatter.messages} msgs",
            "reference": f">= {chatter_acct.self_revealing * k * (k - 1) // 2} internal msgs",
            "ok": chatter.messages >= chatter_acct.self_revealing * k * (k - 1) // 2,
        }
    )
    for nn, kk in counting_pairs:
        row = counting_curve_broadcast([(nn, kk)])[0]
        rows.append(
            {
                "part": "counting",
                "detail": f"n=2^{int(math.log2(nn))} k={kk} q=n/2k",
                "value": f"forced {row.forced_messages:.3g}",
                "reference": f"target n(k-1)/8 = {row.target_messages:.3g}",
                "ok": row.bound_bites,
            }
        )
    findings = [
        "SchemeB and Flooding are silent without advice: every clique classifies external, "
        "so the adversary hides f_i where only outside probing finds it",
        "ChatterFlood chatters: cliques classify internal and pay k(k-1)/2 messages each",
        "with o(N) advice the concrete Theorem 3.1 pair fails on the adversarial gadget; "
        "with the full O(N) oracle it stays linear",
        "Equations 6-7 force >= n(k-1)/8 messages at q = n/2k for all listed (n, k)",
    ]
    return ExperimentResult(
        "E5",
        "Theorem 3.2 — o(n)-bit oracles cannot broadcast with linear messages",
        rows,
        findings,
        columns=("part", "detail", "value", "reference", "ok"),
    )


# ----------------------------------------------------------------------
# E6 — the headline separation
# ----------------------------------------------------------------------
def experiment_e6_separation(
    sizes: Sequence[int] = (16, 32, 64, 128, 256),
    family: str = "complete",
    obs=None,
) -> ExperimentResult:
    """Wakeup advice ``Theta(n log n)`` vs broadcast advice ``Theta(n)``."""
    builder = FAMILY_BUILDERS[family]
    with resolve_obs(obs).wallspan(f"separation/{family}"):
        points = separation_profile(sizes, builder)
    rows = [
        {
            "n": p.n,
            "m": p.m,
            "wakeup_bits": p.wakeup_oracle_bits,
            "broadcast_bits": p.broadcast_oracle_bits,
            "ratio": p.advice_ratio,
            "wakeup_msgs": p.wakeup_messages,
            "broadcast_msgs": p.broadcast_messages,
            "flooding_msgs": p.flooding_messages,
        }
        for p in points
    ]
    series = measured_series(rows, experiment="E6")
    ns = list(series["wakeup_bits"].xs)
    wake_fit = classify_growth(series["wakeup_bits"].xs, series["wakeup_bits"].ys)
    bcast_fit = classify_growth(series["broadcast_bits"].xs, series["broadcast_bits"].ys)
    findings = [
        f"wakeup advice best fit: {wake_fit[0]} (runner-up {wake_fit[1]})",
        f"broadcast advice best fit: {bcast_fit[0]} (runner-up {bcast_fit[1]})",
        f"advice ratio grows {rows[0]['ratio']:.2f} -> {rows[-1]['ratio']:.2f} "
        f"across n={ns[0]}..{ns[-1]} (the log n separation)",
        "both tasks stay linear in messages while flooding grows with m",
    ]
    return ExperimentResult("E6", f"The separation, on the {family} family", rows, findings)


# ----------------------------------------------------------------------
# E7 — robustness of the upper bounds
# ----------------------------------------------------------------------
def experiment_e7_robustness(
    n: int = 64,
    families: Sequence[str] = ("gnp_sparse", "complete", "random_tree"),
    schedulers: Sequence[str] = ("sync", "fifo", "random", "delay-hello", "hurry-hello"),
    cache=None,
    obs=None,
) -> ExperimentResult:
    """Async + anonymous + bounded messages: both upper bounds unaffected."""
    obs = resolve_obs(obs)
    rows: List[Dict[str, Any]] = []
    for family in families:
        graph = _family_graph(family, n, cache)
        nn = graph.num_nodes
        wake_oracle = SpanningTreeWakeupOracle()
        bcast_oracle = LightTreeBroadcastOracle()
        wake_advice = _cached_advice(cache, family, n, wake_oracle, graph)
        bcast_advice = _cached_advice(cache, family, n, bcast_oracle, graph)
        for sched in schedulers:
            for anonymous in (False, True):
                with obs.wallspan(f"cell/{family}/{sched}/anon={anonymous}"):
                    w = run_wakeup(
                        graph,
                        wake_oracle,
                        TreeWakeup(),
                        scheduler=make_scheduler(sched, seed=13),
                        anonymous=anonymous,
                        advice=wake_advice,
                        obs=obs,
                    )
                    b = run_broadcast(
                        graph,
                        bcast_oracle,
                        SchemeB(),
                        scheduler=make_scheduler(sched, seed=13),
                        anonymous=anonymous,
                        advice=bcast_advice,
                        obs=obs,
                    )
                rows.append(
                    {
                        "family": family,
                        "scheduler": sched,
                        "anonymous": anonymous,
                        "wakeup_msgs": w.messages,
                        "wakeup_ok": w.success and w.messages == nn - 1,
                        "bcast_msgs": b.messages,
                        "bcast_ok": b.success and b.messages <= 2 * (nn - 1),
                        "payloads": len(b.trace.payload_alphabet()),
                    }
                )
    findings = [
        f"all {len(rows)} scheduler x anonymity combinations succeeded within the "
        f"message bounds: {all(r['wakeup_ok'] and r['bcast_ok'] for r in rows)}",
        "message alphabet stays at 2 constant tokens (bounded-size messages)",
    ]
    return ExperimentResult(
        "E7", "Section 1.3 — upper bounds hold asynchronously, anonymously, bounded", rows, findings
    )


# ----------------------------------------------------------------------
# E8 — counting numerics (Claim 2.1, Equations 1-7, the Remark)
# ----------------------------------------------------------------------
def experiment_e8_counting(
    exponents: Sequence[int] = (8, 12, 16, 20),
    subdivided_factors: Sequence[int] = (1, 2, 3),
) -> ExperimentResult:
    """Claim 2.1 constants; P/Q growth; the c/(c+1) threshold Remark."""
    rows: List[Dict[str, Any]] = []
    big_a, big_b = claim21_constants(80, 80)
    rows.append(
        {
            "part": "claim2.1",
            "detail": f"constants on [1,80]^2",
            "value": f"A={big_a}, B={big_b}",
            "reference": "inequality holds from (1,1) on",
            "ok": big_a == 0 and big_b == 0,
        }
    )
    for a, b in ((5, 5), (20, 11), (64, 40)):
        rows.append(
            {
                "part": "claim2.1",
                "detail": f"a={a}, b={b}",
                "value": f"lhs=2^{claim21_lhs_log2(a, b):.1f}",
                "reference": f"rhs=2^{claim21_rhs_log2(a, b):.1f}",
                "ok": claim21_lhs_log2(a, b) <= claim21_rhs_log2(a, b),
            }
        )
    for e in exponents:
        n = 2**e
        q = n * e  # about n log n oracle bits on the 2n-node family
        p = wakeup_instances_log2(n)
        exact = oracle_outputs_log2(q, 2 * n)
        bound = oracle_outputs_log2_bound(q, 2 * n)
        rows.append(
            {
                "part": "P-vs-Q",
                "detail": f"n=2^{e}, q=n log n",
                "value": f"log2 P = {p:.3g}, log2 Q = {exact:.3g}",
                "reference": f"Eq.3 bound {bound:.3g} (exact <= bound)",
                "ok": exact <= bound + 1e-6,
            }
        )
    # The Remark: subdividing cn edges raises the biting threshold toward
    # c/(c+1).  At fixed finite n the largest alpha at which the bound still
    # forces superlinearity must be monotone in c.
    n = 2**22
    biting = [largest_biting_alpha(n, c) for c in subdivided_factors]
    for c, alpha in zip(subdivided_factors, biting):
        rows.append(
            {
                "part": "remark",
                "detail": f"c={c}: largest biting alpha at n=2^22",
                "value": f"{alpha:.2f}",
                "reference": f"asymptote c/(c+1) = {c / (c + 1):.3f}",
                "ok": True,
            }
        )
    monotone = all(a <= b for a, b in zip(biting, biting[1:]))
    rows.append(
        {
            "part": "remark",
            "detail": "biting threshold monotone in c",
            "value": str(biting),
            "reference": "Remark after Theorem 2.2",
            "ok": monotone,
        }
    )
    findings = [
        "Claim 2.1 needs no large constants: the inequality holds from a=1, b=1",
        "the exact output count Q never exceeds the paper's Equation 3 bound",
        "subdividing cn edges shifts the biting threshold toward c/(c+1), per the Remark",
    ]
    return ExperimentResult(
        "E8",
        "Counting numerics — Claim 2.1 and Equations 1-7",
        rows,
        findings,
        columns=("part", "detail", "value", "reference", "ok"),
    )


# ----------------------------------------------------------------------
# E15 — Theorem 2.2 at mega scale (implicit gadgets, vectorized engine)
# ----------------------------------------------------------------------
def experiment_e15_mega_separation(
    n_values: Sequence[int] = (2000, 5000, 10000, 20000, 50000),
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    """The E2 separation curves two orders of magnitude past explicit graphs.

    E2 measures ``G_{n,S}`` by materializing it, which caps ``n`` near
    ``10^3`` (the gadget has ``Theta(n^2)`` edges).  Here each point is an
    *implicit* gadget run through the vectorized engine
    (:func:`repro.vectorized.mega_gadget_batch`): the oracle's BFS tree is
    derived analytically from ``(n, S)`` and the wakeup takes ``N - 1``
    messages through the batch core, so ``n = 10^5`` is a second of work.
    The growth fits then separate the two rates the theorem opposes:
    oracle bits ``Theta(N log N)`` against messages ``Theta(N)``, with
    zero-advice flooding ``Theta(N^2)`` computed analytically alongside.
    """
    from ..vectorized import mega_gadget_batch

    rows: List[Dict[str, Any]] = []
    nodes: List[int] = []
    mean_bits: List[float] = []
    mean_msgs: List[float] = []
    flood: List[float] = []
    for n in n_values:
        batch = mega_gadget_batch(n, list(seeds))
        for row in batch:
            rows.append(
                {
                    "part": "mega-upper",
                    "detail": f"G_(n={n},S) seed={row.seed}: N={row.gadget_nodes}",
                    "value": row.oracle_bits,
                    "reference": f"messages={row.messages}=N-1, rounds={row.rounds}",
                    "ok": row.success and row.messages == row.gadget_nodes - 1,
                    "N": row.gadget_nodes,
                }
            )
        nodes.append(batch[0].gadget_nodes)
        mean_bits.append(sum(r.oracle_bits for r in batch) / len(batch))
        mean_msgs.append(sum(r.messages for r in batch) / len(batch))
        flood.append(float(batch[0].flooding_messages))
        rows.append(
            {
                "part": "zero-advice",
                "detail": f"G_(n={n},S): flooding (analytic)",
                "value": batch[0].flooding_messages,
                "reference": f"2m - N + 1; m={batch[0].gadget_edges}",
                "ok": True,
                "N": batch[0].gadget_nodes,
            }
        )
    if len(n_values) >= 2:
        for series, label, models, expect in (
            (mean_bits, "oracle bits", ("n", "n log n"), "n log n"),
            (mean_msgs, "messages", ("n", "n log n"), "n"),
            (flood, "flooding messages", ("n", "n^2"), "n^2"),
        ):
            fits = classify_growth(nodes, series, models=models)
            rows.append(
                {
                    "part": "growth",
                    "detail": f"{label} vs N",
                    "value": str(fits[0]),
                    "reference": f"expected Theta({expect})",
                    "ok": fits[0].model == expect,
                }
            )
    findings = [
        f"implicit gadgets carry the separation to n={max(n_values)} "
        "(never materializing the Theta(n^2) edges)",
        "oracle bits fit Theta(N log N) while wakeup messages stay exactly N-1",
        "zero-advice flooding is Theta(N^2) on the same graphs — the Theorem 2.2 gap, at scale",
    ]
    return ExperimentResult(
        "E15",
        "Theorem 2.2 at mega scale — implicit gadgets through the vectorized engine",
        rows,
        findings,
        columns=("part", "detail", "value", "reference", "ok"),
    )


def _extension_registry() -> Dict[str, Callable[..., "ExperimentResult"]]:
    # imported lazily to avoid a circular import at module load
    from .extensions import (
        experiment_e10_gossip,
        experiment_e11_construction,
        experiment_e12_election,
        experiment_e13_exploration,
        experiment_e14_time,
        experiment_e9_tradeoff,
    )

    return {
        "E9": experiment_e9_tradeoff,
        "E10": experiment_e10_gossip,
        "E11": experiment_e11_construction,
        "E12": experiment_e12_election,
        "E13": experiment_e13_exploration,
        "E14": experiment_e14_time,
    }


#: The registry mapping experiment ids to callables.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": experiment_e1_wakeup_upper,
    "E2": experiment_e2_wakeup_lower,
    "E3": experiment_e3_light_tree,
    "E4": experiment_e4_broadcast_upper,
    "E5": experiment_e5_broadcast_lower,
    "E6": experiment_e6_separation,
    "E7": experiment_e7_robustness,
    "E8": experiment_e8_counting,
    "E15": experiment_e15_mega_separation,
}
EXPERIMENTS.update(_extension_registry())


def run_experiment(experiment_id: str, cache=None, obs=None, **kwargs) -> ExperimentResult:
    """Run one experiment from the registry by id (``E1`` .. ``E15``).

    ``cache`` — an optional :class:`repro.parallel.ConstructionCache` —
    is forwarded to experiments that declare a ``cache`` parameter (the
    graph-building ones); experiments that are pure numerics simply never
    receive it.  ``obs`` — an optional :class:`repro.obs.Observation` —
    is forwarded the same way to experiments that declare an ``obs``
    parameter (the sweep-style ones, which open a ``wallspan`` per cell
    and thread the handle into their task runs); attach a
    :class:`repro.obs.Profiler` to get the per-phase cost breakdown that
    ``repro profile`` prints.
    """
    try:
        fn = EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; have {sorted(EXPERIMENTS)}"
        ) from None
    parameters = inspect.signature(fn).parameters
    if cache is not None and "cache" in parameters:
        kwargs["cache"] = cache
    if obs is not None and "obs" in parameters:
        kwargs["obs"] = obs
    return fn(**kwargs)
