"""The fault-tolerant, journaled layer over the process-pool fan-out.

:mod:`repro.parallel` scales the E1-E14 grid out across workers; this
module makes that fan-out survive the faults a long run actually meets —
a worker segfaulting or OOM-killed, a cell hanging, a flaky exception —
and makes the *parent* itself interruptible: completed cells are
journaled to disk (:mod:`repro.runner.journal`), so a killed run resumes
where it stopped.

**The determinism contract carries over.**  A run interrupted at an
arbitrary cell and resumed produces rows, telemetry JSONL, and metrics
byte-identical to an uninterrupted run at the same seed: journaled cells
re-emit their stored rows and events verbatim
(:class:`repro.obs.ReplayedEvent`), fresh cells compute exactly what the
serial path computes, and the merge happens in canonical grid order
whatever order cells settled in.  Fault telemetry — attempt failures,
retries, resumes — is deliberately kept **out** of the deterministic
result stream (faults are host-dependent) and flows through a separate
runner Observation instead, which ``repro stats`` summarizes like any
other event stream.

**Fault semantics.**

* A cell that raises keeps the pool alive; the cell is retried with
  exponential backoff up to its budget.
* A cell that exceeds the per-cell ``timeout`` gets its pool recycled
  (there is no way to kill one hung worker out of a pool); the timed-out
  cell is charged an attempt, innocent in-flight cells are resubmitted
  free of charge.
* A worker that *dies* breaks the whole
  :class:`~concurrent.futures.ProcessPoolExecutor`, which cannot say
  which cell killed it — so every in-flight cell is re-run **solo** (one
  at a time in a fresh pool).  A cell that crashes alone is definitively
  the culprit and is charged; innocent cells simply succeed on their solo
  run.  A dead worker therefore fails only its own cell.
* A cell that exhausts ``retries`` degrades to a structured ``failed``
  row (the fault analog of the sweep's ``skipped`` rows) and the run
  continues; the caller reports a summary and a nonzero exit code.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import functools

from ..analysis.measure import Measurement, failed_row
from ..network.builders import FAMILY_BUILDERS
from ..obs.events import (
    CellAttemptFailed,
    CellFailed,
    CellResumed,
    CellRetried,
    ReplayedEvent,
    jsonable,
)
from ..obs.observe import Observation, resolve_obs
from ..obs.sinks import JSONLSink
from ..parallel.cache import CacheSpec, ConstructionCache
from ..parallel.executor import (
    _check_picklable,
    init_worker_cache,
    resolve_workers,
    sweep_cell_task,
)
from .journal import JOURNAL_NAME, JournalEntry, RunJournal, cell_key, load_journal
from .progress import ProgressReporter
from .retry import RetryPolicy

__all__ = [
    "WorkUnit",
    "CellOutcome",
    "RunStats",
    "RunReport",
    "ROWS_NAME",
    "RESULTS_NAME",
    "RUNNER_TRACE_NAME",
    "measurement_fingerprint",
    "canonical_json",
    "load_results",
    "execute_units",
    "resilient_sweep_families",
    "resilient_gadget_batches",
    "resilient_run_experiments",
]

#: File names written into a run directory next to the journal.
ROWS_NAME = "rows.json"
RESULTS_NAME = "results.json"
RUNNER_TRACE_NAME = "runner.jsonl"

#: Safety margin added to the per-cell deadline for pool startup latency.
_DEADLINE_GRACE = 0.05


def canonical_json(value: Any) -> Any:
    """Round-trip ``value`` through JSON so fresh and journal-replayed
    payloads are indistinguishable (tuples become lists *now*, not only
    after a resume)."""
    return json.loads(json.dumps(jsonable(value)))


def measurement_fingerprint(measurement: Any) -> str:
    """A stable textual identity for a measurement, used in journal keys.

    ``functools.partial`` unwraps to ``module.qualname(bound args)``, so
    seeded variants of one grid measurement key separately.
    """
    if isinstance(measurement, functools.partial):
        inner = measurement_fingerprint(measurement.func)
        bits = [repr(a) for a in measurement.args]
        bits += [f"{k}={v!r}" for k, v in sorted(measurement.keywords.items())]
        return f"{inner}({', '.join(bits)})"
    module = getattr(measurement, "__module__", None) or "?"
    qualname = getattr(measurement, "__qualname__", None) or repr(measurement)
    return f"{module}.{qualname}"


@dataclass(frozen=True)
class WorkUnit:
    """One journalable unit of work: identity + the picklable task."""

    experiment: str
    cell: str
    seed: Any
    fn: Callable[..., Any]
    args: Tuple[Any, ...]
    meta: Tuple[Tuple[str, Any], ...] = ()

    @property
    def key(self) -> str:
        return cell_key(self.experiment, self.cell, self.seed)

    @property
    def meta_dict(self) -> Dict[str, Any]:
        return dict(self.meta)


@dataclass
class CellOutcome:
    """How one unit of work settled."""

    unit: WorkUnit
    status: str  # "done" | "failed"
    attempts: int
    row: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    resumed: bool = False
    error: Optional[str] = None
    detail: Optional[str] = None


@dataclass
class RunStats:
    """End-of-run accounting, printed as the runner summary."""

    done: int = 0
    resumed: int = 0
    failed: int = 0
    retries: int = 0
    attempt_failures: int = 0
    pool_recycles: int = 0
    corrupt_journal_lines: int = 0

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def summary_line(self) -> str:
        parts = [f"{self.done} cell(s) done"]
        if self.resumed:
            parts[0] += f" ({self.resumed} replayed from journal)"
        parts.append(f"{self.failed} failed")
        if self.retries:
            parts.append(f"{self.retries} retry(ies)")
        if self.pool_recycles:
            parts.append(f"{self.pool_recycles} pool recycle(s)")
        if self.corrupt_journal_lines:
            parts.append(f"{self.corrupt_journal_lines} corrupt journal line(s)")
        return "runner: " + ", ".join(parts)


@dataclass
class RunReport:
    """What a resilient front-end returns: payload + fault accounting."""

    stats: RunStats
    rows: Optional[List[Dict[str, Any]]] = None
    results: Optional[Dict[str, Any]] = None
    run_dir: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.stats.ok


# ----------------------------------------------------------------------
# Pool hosting
# ----------------------------------------------------------------------
class _PoolHost:
    """A recyclable process pool: crashes and hangs are cured by
    terminating every worker and starting fresh."""

    def __init__(self, workers: int, cache_spec: Optional[CacheSpec]) -> None:
        self.workers = workers
        self.cache_spec = cache_spec
        self._pool: Optional[ProcessPoolExecutor] = None

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=init_worker_cache,
                initargs=(self.cache_spec,),
            )
        return self._pool.submit(fn, *args)

    def recycle(self) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        # Hung workers would block a graceful shutdown forever; kill them.
        # (_processes is private but stable; degrade to a plain shutdown
        # if it ever disappears.)
        procs = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.kill()


@dataclass
class _Flight:
    """Bookkeeping for one submitted attempt."""

    unit: WorkUnit
    attempts: int  # attempts consumed *before* this one
    deadline: Optional[float]
    solo: bool


Normalize = Callable[[Any], Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]]]]


def _default_normalize(payload: Any) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]]]:
    return canonical_json(payload), []


# ----------------------------------------------------------------------
# The core loop
# ----------------------------------------------------------------------
def execute_units(
    units: Sequence[WorkUnit],
    *,
    workers: int,
    policy: RetryPolicy,
    journal: Optional[RunJournal] = None,
    journaled: Optional[Dict[str, JournalEntry]] = None,
    runner_obs: Optional[Observation] = None,
    cache_spec: Optional[CacheSpec] = None,
    normalize: Optional[Normalize] = None,
    progress: Optional["ProgressReporter"] = None,
) -> Tuple[Dict[str, CellOutcome], RunStats]:
    """Run every unit to a settled outcome, fault-tolerantly.

    Returns outcomes keyed by :attr:`WorkUnit.key` — completion order is
    irrelevant; callers merge in their own canonical order.  ``journaled``
    entries with status ``done`` are replayed without recomputation
    (``failed`` entries get a fresh chance).  ``runner_obs`` receives the
    fault/retry/resume telemetry; the deterministic result stream is the
    caller's business entirely.  ``progress`` — an optional
    :class:`repro.runner.progress.ProgressReporter` — gets a heartbeat per
    settled cell (stderr only; results are unaffected).
    """
    obs = resolve_obs(runner_obs)
    normalize = normalize or _default_normalize
    stats = RunStats()
    outcomes: Dict[str, CellOutcome] = {}
    pending: deque = deque()
    suspects: deque = deque()

    for unit in units:
        entry = (journaled or {}).get(unit.key)
        if entry is not None and entry.status == "done":
            outcomes[unit.key] = CellOutcome(
                unit,
                "done",
                attempts=entry.attempts,
                row=entry.row,
                events=list(entry.events),
                resumed=True,
            )
            stats.resumed += 1
            stats.done += 1
            if obs.enabled:
                obs.emit(CellResumed(experiment=unit.experiment, cell=unit.cell))
            if progress is not None:
                progress.cell_done(resumed=True)
        else:
            pending.append((unit, 0))

    if not pending:
        if progress is not None:
            progress.finish()
        return outcomes, stats

    # A hard ceiling on pool recycles: every recycle charges at least one
    # attempt somewhere, so a healthy run can never exceed the total
    # attempt budget.  Tripping this means the pool itself cannot start.
    max_recycles = len(pending) * policy.max_attempts + 8

    pool = _PoolHost(workers, cache_spec)
    in_flight: Dict[Future, _Flight] = {}

    def settle_failed(flight: _Flight, error: str, detail: str) -> None:
        unit = flight.unit
        attempts = flight.attempts + 1
        stats.attempt_failures += 1
        if obs.enabled:
            obs.emit(
                CellAttemptFailed(
                    experiment=unit.experiment,
                    cell=unit.cell,
                    attempt=attempts,
                    error=error,
                    detail=detail,
                )
            )
        if attempts >= policy.max_attempts:
            stats.failed += 1
            if obs.enabled:
                obs.emit(
                    CellFailed(
                        experiment=unit.experiment,
                        cell=unit.cell,
                        attempts=attempts,
                        error=error,
                        detail=detail,
                    )
                )
            outcomes[unit.key] = CellOutcome(
                unit, "failed", attempts=attempts, error=error, detail=detail
            )
            if progress is not None:
                progress.cell_failed()
            if journal is not None:
                journal.append(
                    JournalEntry(
                        key=unit.key,
                        experiment=unit.experiment,
                        cell=unit.cell,
                        seed=unit.seed,
                        status="failed",
                        attempts=attempts,
                        error=error,
                        detail=detail,
                    )
                )
        else:
            delay = policy.delay(attempts)
            stats.retries += 1
            if obs.enabled:
                obs.emit(
                    CellRetried(
                        experiment=unit.experiment,
                        cell=unit.cell,
                        attempt=attempts,
                        delay_s=delay,
                    )
                )
            if delay:
                time.sleep(delay)
            # Once suspect, always solo: keeps crash attribution exact.
            (suspects if flight.solo else pending).append((unit, attempts))

    def settle_done(flight: _Flight, payload: Any) -> None:
        unit = flight.unit
        row, events = normalize(payload)
        attempts = flight.attempts + 1
        outcomes[unit.key] = CellOutcome(
            unit, "done", attempts=attempts, row=row, events=events
        )
        stats.done += 1
        if progress is not None:
            progress.cell_done()
        if journal is not None:
            journal.append(
                JournalEntry(
                    key=unit.key,
                    experiment=unit.experiment,
                    cell=unit.cell,
                    seed=unit.seed,
                    status="done",
                    attempts=attempts,
                    row=row,
                    events=events,
                )
            )

    def submit(unit: WorkUnit, attempts: int, solo: bool) -> None:
        deadline = (
            time.monotonic() + policy.timeout + _DEADLINE_GRACE
            if policy.timeout is not None
            else None
        )
        future = pool.submit(unit.fn, *unit.args)
        in_flight[future] = _Flight(unit, attempts, deadline, solo)

    try:
        while pending or suspects or in_flight:
            if not in_flight and suspects:
                unit, attempts = suspects.popleft()
                submit(unit, attempts, solo=True)
            elif not suspects:
                while pending and len(in_flight) < workers:
                    unit, attempts = pending.popleft()
                    submit(unit, attempts, solo=False)
            if not in_flight:
                continue

            poll: Optional[float] = None
            if policy.timeout is not None:
                nearest = min(
                    f.deadline for f in in_flight.values() if f.deadline is not None
                )
                poll = max(0.0, nearest - time.monotonic()) + _DEADLINE_GRACE
            done, _ = wait(set(in_flight), timeout=poll, return_when=FIRST_COMPLETED)

            broke = False
            for future in done:
                flight = in_flight.pop(future)
                try:
                    payload = future.result()
                except BrokenExecutor:
                    broke = True
                    if flight.solo:
                        # Running alone: this cell provably killed its worker.
                        settle_failed(
                            flight,
                            "WorkerCrash",
                            "worker process died while running this cell",
                        )
                    else:
                        # Culprit unknown — re-run solo, free of charge.
                        suspects.append((flight.unit, flight.attempts))
                except Exception as exc:  # the task itself raised; pool is fine
                    settle_failed(flight, type(exc).__name__, str(exc))
                else:
                    settle_done(flight, payload)

            if broke:
                # The pool is dead; cells still marked in-flight died with it.
                for flight in in_flight.values():
                    suspects.append((flight.unit, flight.attempts))
                in_flight.clear()
                stats.pool_recycles += 1
                if stats.pool_recycles > max_recycles:
                    raise RuntimeError(
                        "runner: worker pool kept breaking "
                        f"({stats.pool_recycles} recycles); giving up"
                    )
                pool.recycle()
                continue

            if policy.timeout is not None and in_flight:
                now = time.monotonic()
                expired = [
                    future
                    for future, flight in in_flight.items()
                    if flight.deadline is not None and now >= flight.deadline
                ]
                if expired:
                    expired_flights = [in_flight.pop(future) for future in expired]
                    survivors = list(in_flight.values())
                    in_flight.clear()
                    stats.pool_recycles += 1
                    if stats.pool_recycles > max_recycles:
                        raise RuntimeError(
                            "runner: worker pool kept breaking "
                            f"({stats.pool_recycles} recycles); giving up"
                        )
                    pool.recycle()
                    for flight in expired_flights:
                        settle_failed(
                            flight,
                            "TimeoutError",
                            f"cell exceeded its {policy.timeout}s wall-clock budget",
                        )
                    for flight in survivors:
                        # Collateral of the recycle: resubmit, no attempt charged.
                        pending.appendleft((flight.unit, flight.attempts))
    finally:
        pool.shutdown()

    if progress is not None:
        progress.finish()
    return outcomes, stats


# ----------------------------------------------------------------------
# Front-end: sweeps
# ----------------------------------------------------------------------
def _sweep_normalize(payload: Any) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    row, events = payload
    return canonical_json(row), [canonical_json(e.to_dict()) for e in events]


def _open_runner_obs(run_dir: str) -> Tuple[Observation, Any]:
    """The run directory's fault-telemetry stream, opened for append so a
    resumed run extends (never truncates) the interrupted run's record."""
    stream = open(os.path.join(run_dir, RUNNER_TRACE_NAME), "a", encoding="utf-8")
    return Observation(JSONLSink(stream)), stream


def _prepare_run_dir(
    run_dir: Optional[str],
) -> Tuple[Optional[RunJournal], Dict[str, JournalEntry], int]:
    if run_dir is None:
        return None, {}, 0
    os.makedirs(run_dir, exist_ok=True)
    path = os.path.join(run_dir, JOURNAL_NAME)
    entries, corrupt = load_journal(path)
    return RunJournal(path), entries, corrupt


def resilient_sweep_families(
    sizes: Sequence[int],
    measurement: Measurement,
    families: Optional[Sequence[str]] = None,
    obs: Optional[Observation] = None,
    workers: Optional[int] = None,
    cache: Optional[ConstructionCache] = None,
    policy: Optional[RetryPolicy] = None,
    run_dir: Optional[str] = None,
    runner_obs: Optional[Observation] = None,
    label: Optional[str] = None,
    progress: Optional[ProgressReporter] = None,
) -> RunReport:
    """:func:`repro.parallel.parallel_sweep_families`, fault-tolerantly.

    Same grid, same rows, same deterministic event stream into ``obs`` —
    plus per-cell timeout/retry (``policy``), crash isolation, and a
    journaled ``run_dir`` that makes the run resumable.  Failed cells
    degrade to structured rows ``{"family", "n", "requested_n",
    "failed": True, "error", "detail", "attempts"}``; check
    ``report.stats.failed`` (the CLI turns it into a nonzero exit).
    """
    workers = resolve_workers(workers)
    policy = policy or RetryPolicy()
    obs = resolve_obs(obs)
    chosen = list(families) if families is not None else sorted(FAMILY_BUILDERS)
    for family in chosen:
        if family not in FAMILY_BUILDERS:
            raise KeyError(family)
    _check_picklable(measurement, "measurement")

    experiment = label or f"sweep:{measurement_fingerprint(measurement)}"
    units = [
        WorkUnit(
            experiment=experiment,
            cell=f"{family}:{n}",
            seed="",
            fn=sweep_cell_task,
            args=(family, n, measurement, True),
            meta=(("family", family), ("n", n)),
        )
        for family in chosen
        for n in sizes
    ]

    journal, journaled, corrupt = _prepare_run_dir(run_dir)
    own_stream = None
    if runner_obs is None and run_dir is not None:
        runner_obs, own_stream = _open_runner_obs(run_dir)
    try:
        outcomes, stats = execute_units(
            units,
            workers=workers,
            policy=policy,
            journal=journal,
            journaled=journaled,
            runner_obs=runner_obs,
            cache_spec=cache.spec() if cache is not None else None,
            normalize=_sweep_normalize,
            progress=progress,
        )
    finally:
        if journal is not None:
            journal.close()
        if own_stream is not None:
            runner_obs.close()
            own_stream.close()
    stats.corrupt_journal_lines = corrupt

    rows: List[Dict[str, Any]] = []
    with obs.wallspan("merge"):
        for unit in units:
            outcome = outcomes[unit.key]
            if outcome.status == "done":
                rows.append(outcome.row)
                if obs.enabled:
                    for event in outcome.events:
                        obs.emit(ReplayedEvent(event))
            else:
                meta = unit.meta_dict
                rows.append(
                    failed_row(
                        meta["family"],
                        meta["n"],
                        outcome.error or "Error",
                        outcome.detail or "",
                        outcome.attempts,
                    )
                )
    if run_dir is not None:
        with open(os.path.join(run_dir, ROWS_NAME), "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2)
            handle.write("\n")
    return RunReport(stats=stats, rows=rows, run_dir=run_dir)


# ----------------------------------------------------------------------
# Front-end: batched gadget measurements
# ----------------------------------------------------------------------
def resilient_gadget_batches(
    n_values: Sequence[int],
    seeds: Sequence[int],
    counts: Optional[int] = None,
    workers: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    run_dir: Optional[str] = None,
    runner_obs: Optional[Observation] = None,
    label: str = "mega-gadget",
    progress: Optional[ProgressReporter] = None,
) -> RunReport:
    """Mega-scale ``G_{n,S}`` separation points, one *batch* unit per ``n``.

    Where :func:`resilient_sweep_families` dispatches one unit per
    (cell, seed), this front-end dispatches one unit per ``n`` covering
    *all* seeds — :func:`repro.parallel.grids.gadget_seed_batch` pushes
    the seeds' replicas through one vectorized pass, so a unit is the
    natural retry/journal granule.  Rows come back flattened (one per
    (n, seed)); a failed batch degrades to one structured failed row per
    seed it covered, so downstream merging stays positional.
    """
    from ..parallel.grids import gadget_seed_batch

    workers = resolve_workers(workers)
    policy = policy or RetryPolicy()
    units = [
        WorkUnit(
            experiment=label,
            cell=f"gnS-{n}",
            seed="batch",
            fn=gadget_seed_batch,
            args=(n, tuple(seeds), counts),
            meta=(("n", n), ("seeds", tuple(seeds))),
        )
        for n in n_values
    ]

    journal, journaled, corrupt = _prepare_run_dir(run_dir)
    own_stream = None
    if runner_obs is None and run_dir is not None:
        runner_obs, own_stream = _open_runner_obs(run_dir)
    try:
        outcomes, stats = execute_units(
            units,
            workers=workers,
            policy=policy,
            journal=journal,
            journaled=journaled,
            runner_obs=runner_obs,
            progress=progress,
        )
    finally:
        if journal is not None:
            journal.close()
        if own_stream is not None:
            runner_obs.close()
            own_stream.close()
    stats.corrupt_journal_lines = corrupt

    rows: List[Dict[str, Any]] = []
    for unit in units:
        outcome = outcomes[unit.key]
        n = unit.meta_dict["n"]
        if outcome.status == "done":
            for row in outcome.row["rows"]:
                rows.append(dict(row, n=n, failed=False))
        else:
            for seed in unit.meta_dict["seeds"]:
                rows.append(
                    {
                        "n": n,
                        "seed": seed,
                        "failed": True,
                        "error": outcome.error or "Error",
                        "detail": outcome.detail or "",
                        "attempts": outcome.attempts,
                    }
                )
    if run_dir is not None:
        with open(os.path.join(run_dir, ROWS_NAME), "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2)
            handle.write("\n")
    return RunReport(stats=stats, rows=rows, run_dir=run_dir)


# ----------------------------------------------------------------------
# Front-end: registry experiments
# ----------------------------------------------------------------------
def experiment_result_to_dict(result: Any) -> Dict[str, Any]:
    """Serialize an :class:`~repro.analysis.result.ExperimentResult` for
    the journal (JSON-canonical, so replay is byte-stable)."""
    return canonical_json(
        {
            "experiment": result.experiment,
            "title": result.title,
            "rows": result.rows,
            "findings": result.findings,
            "columns": list(result.columns) if result.columns is not None else None,
        }
    )


def experiment_result_from_dict(data: Dict[str, Any]) -> Any:
    from ..analysis.result import ExperimentResult

    return ExperimentResult(
        experiment=data["experiment"],
        title=data["title"],
        rows=data["rows"],
        findings=data["findings"],
        columns=data["columns"],
    )


def load_results(run_dir: str) -> Dict[str, Any]:
    """Rehydrate a run directory's ``results.json`` as experiment results.

    Returns the same shape :func:`resilient_run_experiments` hands back in
    ``report.results``: requested ids mapped to
    :class:`~repro.analysis.result.ExperimentResult`, with entries that
    exhausted their retries synthesized into single-row ``failed`` results.
    This is what lets ``repro verdict --results DIR`` replay a saved run
    instead of re-executing the grid.
    """
    from ..analysis.result import ExperimentResult

    path = os.path.join(run_dir, RESULTS_NAME)
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"no {RESULTS_NAME} in {run_dir!r} — was this directory written by "
            "resilient_run_experiments (repro all --run-dir)?"
        )
    with open(path, "r", encoding="utf-8") as handle:
        serialized = json.load(handle)
    results: Dict[str, Any] = {}
    for eid, payload in serialized.items():
        if payload.get("failed"):
            results[eid] = ExperimentResult(
                experiment=payload.get("experiment", eid.upper()),
                title="FAILED",
                rows=[payload],
                findings=[
                    f"failed after {payload.get('attempts', '?')} attempt(s): "
                    f"{payload.get('error')}: {payload.get('detail')}"
                ],
            )
        else:
            results[eid] = experiment_result_from_dict(payload)
    return results


def serialized_experiment_task(experiment_id: str, kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one registry experiment, return it as the
    JSON-canonical dict the journal stores."""
    from ..parallel.executor import experiment_task

    return experiment_result_to_dict(experiment_task(experiment_id, kwargs))


def resilient_run_experiments(
    ids: Sequence[str],
    workers: Optional[int] = None,
    cache: Optional[ConstructionCache] = None,
    kwargs_by_id: Optional[Dict[str, Dict[str, Any]]] = None,
    policy: Optional[RetryPolicy] = None,
    run_dir: Optional[str] = None,
    runner_obs: Optional[Observation] = None,
    progress: Optional[ProgressReporter] = None,
) -> RunReport:
    """:func:`repro.parallel.run_experiments`, fault-tolerantly.

    Each experiment id is one journaled unit of work.  ``report.results``
    maps the requested ids (in request order) to
    :class:`~repro.analysis.result.ExperimentResult`; an experiment that
    exhausts its retries maps to a synthesized failure result whose single
    row is the structured ``failed`` record.  With a ``run_dir`` the
    merged payload also lands in ``results.json`` for byte-level diffing.
    """
    from ..analysis.experiments import EXPERIMENTS
    from ..analysis.result import ExperimentResult

    workers = resolve_workers(workers)
    policy = policy or RetryPolicy()
    kwargs_by_id = kwargs_by_id or {}
    for eid in ids:
        if eid.upper() not in EXPERIMENTS:
            raise ValueError(
                f"unknown experiment {eid!r}; have {sorted(EXPERIMENTS)}"
            )

    units = [
        WorkUnit(
            experiment=eid.upper(),
            cell=json.dumps(kwargs_by_id.get(eid, {}), sort_keys=True, default=repr),
            seed="",
            fn=serialized_experiment_task,
            args=(eid, kwargs_by_id.get(eid, {})),
        )
        for eid in ids
    ]

    journal, journaled, corrupt = _prepare_run_dir(run_dir)
    own_stream = None
    if runner_obs is None and run_dir is not None:
        runner_obs, own_stream = _open_runner_obs(run_dir)
    try:
        outcomes, stats = execute_units(
            units,
            workers=workers,
            policy=policy,
            journal=journal,
            journaled=journaled,
            runner_obs=runner_obs,
            cache_spec=cache.spec() if cache is not None else None,
            progress=progress,
        )
    finally:
        if journal is not None:
            journal.close()
        if own_stream is not None:
            runner_obs.close()
            own_stream.close()
    stats.corrupt_journal_lines = corrupt

    results: Dict[str, Any] = {}
    serialized: Dict[str, Any] = {}
    for eid, unit in zip(ids, units):
        outcome = outcomes[unit.key]
        if outcome.status == "done":
            results[eid] = experiment_result_from_dict(outcome.row)
            serialized[eid] = outcome.row
        else:
            failure = {
                "experiment": eid.upper(),
                "failed": True,
                "error": outcome.error,
                "detail": outcome.detail,
                "attempts": outcome.attempts,
            }
            results[eid] = ExperimentResult(
                experiment=eid.upper(),
                title="FAILED",
                rows=[failure],
                findings=[
                    f"failed after {outcome.attempts} attempt(s): "
                    f"{outcome.error}: {outcome.detail}"
                ],
            )
            serialized[eid] = failure
    if run_dir is not None:
        with open(os.path.join(run_dir, RESULTS_NAME), "w", encoding="utf-8") as handle:
            json.dump(serialized, handle, indent=2)
            handle.write("\n")
    return RunReport(stats=stats, results=results, run_dir=run_dir)
