"""Mobile-agent substrate: one walker exploring a port-labeled network.

"Exploration by mobile agents" is the last problem the paper's conclusion
names as a candidate for the oracle-size measure, and the related work
([2], [7] in the paper) is all about how knowledge changes exploration
cost.  This module provides the minimal agent model those comparisons
need:

* a single agent starts at a node (default: the source), sees the current
  node's oracle advice, degree, label (unless anonymous), and the port it
  entered through, carries arbitrary private memory, and repeatedly either
  *moves* through a local port or *halts*;
* the cost measure is the number of edge traversals (*moves*) — the agent
  analogue of message complexity;
* :func:`run_exploration` drives the walk and reports whether every node
  was visited, in how many moves, with the full trail for auditing.

Oracles are reused unchanged: advice lives at nodes, and the agent reads
the advice of the node it stands on — knowledge about the network placed
*in* the network, exactly the paper's model transplanted to the agent
setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Protocol, runtime_checkable

from ..core.oracle import AdviceMap, Oracle
from ..encoding import BitString
from ..network.graph import PortLabeledGraph

__all__ = ["AgentView", "Explorer", "ExplorationResult", "run_exploration"]


@dataclass(frozen=True)
class AgentView:
    """What the agent perceives at its current node."""

    advice: BitString
    degree: int
    entry_port: Optional[int]  # None at the start node
    node_label: Optional[Hashable]  # None in anonymous runs


@runtime_checkable
class Explorer(Protocol):
    """The agent's program: look at the current node, move or halt."""

    def choose_port(self, view: AgentView) -> Optional[int]:  # pragma: no cover
        """Return a local port to leave through, or ``None`` to halt."""
        ...


@dataclass
class ExplorationResult:
    """Outcome of one exploration run."""

    graph_nodes: int
    graph_edges: int
    oracle_name: str
    explorer_name: str
    oracle_bits: int
    moves: int
    visited: int
    halted: bool
    trail: List[Hashable] = field(default_factory=list)

    @property
    def success(self) -> bool:
        """Visited every node and halted on its own."""
        return self.halted and self.visited == self.graph_nodes

    def summary(self) -> str:
        status = "ok" if self.success else "FAILED"
        return (
            f"exploration on n={self.graph_nodes}, m={self.graph_edges}: "
            f"{self.oracle_name} ({self.oracle_bits} bits) + {self.explorer_name} "
            f"-> {self.moves} moves, visited {self.visited}/{self.graph_nodes} [{status}]"
        )


def run_exploration(
    graph: PortLabeledGraph,
    oracle: Oracle,
    explorer: Explorer,
    start: Optional[Hashable] = None,
    anonymous: bool = False,
    max_moves: Optional[int] = None,
    advice: Optional[AdviceMap] = None,
) -> ExplorationResult:
    """Walk the agent until it halts (or the move limit trips)."""
    if not graph.frozen:
        graph = graph.copy().freeze()
    if advice is None:
        advice = oracle.advise(graph)
    position = start if start is not None else graph.source
    if not graph.has_node(position):
        raise ValueError(f"start node {position!r} is not in the graph")
    if max_moves is None:
        max_moves = 8 * graph.num_edges + 4 * graph.num_nodes + 16
    visited = {position}
    trail = [position]
    entry_port: Optional[int] = None
    moves = 0
    halted = False
    while moves < max_moves:
        view = AgentView(
            advice=advice[position],
            degree=graph.degree(position),
            entry_port=entry_port,
            node_label=None if anonymous else position,
        )
        port = explorer.choose_port(view)
        if port is None:
            halted = True
            break
        if not 0 <= port < graph.degree(position):
            raise ValueError(
                f"explorer chose port {port} at node {position!r} of degree "
                f"{graph.degree(position)}"
            )
        neighbor = graph.neighbor_via(position, port)
        entry_port = graph.port(neighbor, position)
        position = neighbor
        visited.add(position)
        trail.append(position)
        moves += 1
    explorer_name = getattr(explorer, "name", type(explorer).__name__)
    return ExplorationResult(
        graph_nodes=graph.num_nodes,
        graph_edges=graph.num_edges,
        oracle_name=oracle.name,
        explorer_name=explorer_name,
        oracle_bits=advice.total_bits(),
        moves=moves,
        visited=len(visited),
        halted=halted,
        trail=trail,
    )
