"""Claim 3.1's light spanning tree and Theorem 3.1's broadcast oracle.

**Edge weights.**  Every edge ``e = {u, v}`` gets weight
``w(e) = min(port_u(e), port_v(e))`` and *contribution* ``#2(w(e))`` — the
bits needed to write that weight down.

**Claim 3.1.**  Some spanning tree ``T0`` has total contribution at most
``4n``.  The construction is a phase-based variant of Kruskal/Borůvka: in
phase ``k`` every "small" tree (fewer than ``2^k`` nodes) selects a
minimum-weight edge leaving it; all selected edges are added and one edge per
created cycle is erased.  Since a tree of size ``|T|`` always has a leaving
edge of weight at most ``|T| - 1`` (some node of ``T`` with an outgoing edge
has at most ``|T| - 1`` ports pointing inside), phase ``k`` contributes at
most ``k * n / 2^(k-1)`` bits, and the total telescopes to ``4n``.

**The oracle.**  For each tree edge, the binary representation of its weight
is handed to the endpoint *whose local port number equals the weight* —
that endpoint can interpret the weight directly as one of its own ports.
A node's weights are packed at 2 bits per contribution bit
(:func:`repro.encoding.encode_weight_list`), so the oracle size is at most
``2 * 4n = 8n``.  Scheme B (:class:`repro.algorithms.SchemeB`) then
broadcasts over ``T0`` with at most ``2(n - 1)`` messages.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from ..core.oracle import AdviceMap, Oracle
from ..encoding import code_length, encode_weight_list
from ..network.graph import GraphError, PortLabeledGraph, edge_key, label_key

__all__ = [
    "edge_contribution",
    "tree_contribution",
    "light_spanning_tree",
    "LightTreeBroadcastOracle",
    "assign_weight_advice",
]

Node = Hashable
Edge = Tuple[Node, Node]


def edge_contribution(graph: PortLabeledGraph, u: Node, v: Node) -> int:
    """``#2(w(e))`` for the edge ``{u, v}``."""
    return code_length(graph.edge_weight(u, v))


def tree_contribution(graph: PortLabeledGraph, edges) -> int:
    """Total contribution ``sum #2(w(e))`` of an edge set."""
    return sum(edge_contribution(graph, u, v) for u, v in edges)


class _DisjointSets:
    """Union-find over node labels with size tracking and member lists."""

    def __init__(self, nodes) -> None:
        self._parent: Dict[Node, Node] = {v: v for v in nodes}
        self._size: Dict[Node, int] = {v: 1 for v in self._parent}
        self._members: Dict[Node, List[Node]] = {v: [v] for v in self._parent}

    def find(self, v: Node) -> Node:
        root = v
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[v] != root:
            self._parent[v], v = root, self._parent[v]
        return root

    def union(self, u: Node, v: Node) -> bool:
        ru, rv = self.find(u), self.find(v)
        if ru == rv:
            return False
        if self._size[ru] < self._size[rv]:
            ru, rv = rv, ru
        self._parent[rv] = ru
        self._size[ru] += self._size[rv]
        self._members[ru].extend(self._members.pop(rv))
        return True

    def roots(self) -> List[Node]:
        return list(self._members)

    def size(self, root: Node) -> int:
        return self._size[root]

    def members(self, root: Node) -> List[Node]:
        return self._members[root]


def light_spanning_tree(graph: PortLabeledGraph) -> Set[Edge]:
    """Build ``T0`` per Claim 3.1; returns its canonical edge set.

    Deterministic: ties among minimum-weight outgoing edges break on
    ``(weight, repr(edge))``.  The result is a spanning tree whose total
    contribution is at most ``4n`` (asserted cheaply here; certified broadly
    by the tests and benchmark E3).
    """
    n = graph.num_nodes
    if n == 1:
        return set()
    dsu = _DisjointSets(graph.nodes())
    tree: Set[Edge] = set()
    phase = 1
    while len(dsu.roots()) > 1:
        threshold = 1 << phase  # components smaller than 2^k are "small"
        selected: List[Tuple[int, str, Edge]] = []
        for root in dsu.roots():
            if dsu.size(root) >= threshold:
                continue
            best: Tuple[int, str, Edge] = None  # type: ignore[assignment]
            for x in dsu.members(root):
                for y in graph.neighbors(x):
                    if dsu.find(y) == root:
                        continue
                    w = graph.edge_weight(x, y)
                    key = (w, repr(edge_key(x, y)), edge_key(x, y))
                    if best is None or key[:2] < best[:2]:
                        best = key
            if best is None:
                raise GraphError("graph is not connected")
            selected.append(best)
        # Merge: add selected edges, erasing those that would close a cycle.
        for __, __, (u, v) in sorted(selected, key=lambda t: (t[0], t[1])):
            if dsu.union(u, v):
                tree.add(edge_key(u, v))
        phase += 1
        if phase > 2 * n:  # defensive: cannot happen on a connected graph
            raise GraphError("light tree construction failed to converge")
    assert len(tree) == n - 1
    return tree


def assign_weight_advice(
    graph: PortLabeledGraph, tree: Set[Edge]
) -> Dict[Node, List[int]]:
    """Distribute tree-edge weights to endpoints, per Theorem 3.1.

    Edge ``e`` goes to the endpoint ``x`` with ``port_x(e) = w(e)``; when
    both ports equal the weight the smaller-``repr`` endpoint wins (the
    paper breaks ties arbitrarily).  Each node's list is sorted — the set of
    values is what matters to Scheme B.
    """
    weights: Dict[Node, List[int]] = {}
    for u, v in sorted(tree, key=label_key):
        pu, pv = graph.port(u, v), graph.port(v, u)
        w = min(pu, pv)
        if pu == w and pv == w:
            x = u if label_key(u) <= label_key(v) else v
        else:
            x = u if pu == w else v
        weights.setdefault(x, []).append(w)
    return {x: sorted(ws) for x, ws in weights.items()}


class LightTreeBroadcastOracle(Oracle):
    """Theorem 3.1's oracle: light-tree edge weights, ``<= 8n`` bits total."""

    def advise(self, graph: PortLabeledGraph) -> AdviceMap:
        tree = light_spanning_tree(graph)
        weights = assign_weight_advice(graph, tree)
        return AdviceMap({x: encode_weight_list(ws) for x, ws in weights.items()})

    def contribution(self, graph: PortLabeledGraph) -> int:
        """``sum_{e in T0} #2(w(e))`` — the Claim 3.1 quantity (``<= 4n``)."""
        return tree_contribution(graph, light_spanning_tree(graph))

    @staticmethod
    def size_upper_bound(n: int) -> int:
        """The analytic bound from Claim 3.1: ``8n`` bits."""
        return 8 * n
