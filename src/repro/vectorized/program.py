"""Compile a prepared Simulation into a declarative vector program.

The vectorized engine cannot call ``Process.on_receive`` per message —
that callback *is* the per-delivery cost it exists to remove.  Instead,
algorithms whose schemes are simple enough register a *compiler* here
(:func:`register_vector_semantics`) that translates a whole run's scheme
population into a :class:`VectorProgram`: numpy send tables plus an
activation rule.  Both shipped semantics are "act exactly once, on first
receipt" state machines:

* :class:`repro.algorithms.flooding._FloodingScheme` — on activation,
  send on every port except the arrival port (the source, activated at
  init, uses every port);
* :class:`repro.algorithms.tree_wakeup._TreeWakeupScheme` — on
  activation, send on the advice-decoded children ports, in decode
  order.

A compiler must refuse (return ``None``) anything it cannot express
exactly — mixed scheme types, already-consumed scheme state — and the
vectorized engine then falls back to the fast path, keeping the
byte-identity contract trivially intact.

:class:`VectorTopology` wraps the PR 4 :class:`CompiledTopology` in numpy
views.  The ``array('l')`` CSR tables are shared zero-copy via the buffer
protocol; the only derived addition is ``rank`` — the lexicographic rank
of ``repr(label)`` per node, which replaces the repr *string* in the
synchronous delivery sort key (equal reprs get equal ranks, so tie
behavior is unchanged).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Type

import numpy as np

from ..algorithms.flooding import _FloodingScheme
from ..algorithms.tree_wakeup import (
    _TreeWakeupScheme,
    safe_decode_children_ports,
)
from ..fastpath.topology import CompiledTopology

__all__ = [
    "VectorTopology",
    "VectorProgram",
    "compile_program",
    "register_vector_semantics",
]


def _as_i64(buf) -> np.ndarray:
    """Zero-copy int64 view of an ``array('l')`` (itemsize-checked)."""
    arr = np.frombuffer(buf, dtype=np.dtype(f"i{buf.itemsize}"))
    return arr if arr.dtype == np.int64 else arr.astype(np.int64)


class VectorTopology:
    """Numpy views over one :class:`CompiledTopology` (+ repr ranks)."""

    __slots__ = (
        "labels", "index", "degrees", "offsets", "neighbor_at", "arrival_at",
        "rank", "source_index",
    )

    def __init__(self, topo: CompiledTopology) -> None:
        self.labels = topo.labels
        self.index = topo.index
        self.degrees = _as_i64(topo.degrees)
        self.offsets = _as_i64(topo.offsets)
        self.neighbor_at = _as_i64(topo.neighbor_at)
        self.arrival_at = _as_i64(topo.arrival_at)
        # Rank of repr(label) in sorted order; ties (impossible for distinct
        # hashable labels with distinct reprs, but allowed by the contract)
        # collapse to one rank, exactly like equal repr strings compare equal.
        self.rank = np.unique(np.array(topo.reprs), return_inverse=True)[1].astype(
            np.int64
        )
        self.source_index = topo.source_index

    @property
    def num_nodes(self) -> int:
        return len(self.labels)


class VectorProgram:
    """One run's semantics as data: activation rule + send tables.

    ``kind``:

    * ``"flood"`` — on activation, send ``payload`` on every port except
      the arrival port (init activations have no arrival and use every
      port).  Destinations come straight from the topology CSR.
    * ``"ports"`` — on activation, send on a fixed per-node port list
      (CSR over ``send_offsets``), independent of the arrival port.
      ``send_dest``/``send_aport`` are precomputed so the engine never
      consults the topology — which is what lets
      :mod:`repro.vectorized.gadgets` run graphs whose full topology was
      never materialized.
    """

    __slots__ = (
        "kind", "payload", "init_active",
        "send_offsets", "send_port", "send_dest", "send_aport",
    )

    def __init__(
        self,
        kind: str,
        payload,
        init_active: np.ndarray,
        send_offsets: Optional[np.ndarray] = None,
        send_port: Optional[np.ndarray] = None,
        send_dest: Optional[np.ndarray] = None,
        send_aport: Optional[np.ndarray] = None,
    ) -> None:
        if kind not in ("flood", "ports"):
            raise ValueError(f"unknown program kind {kind!r}")
        self.kind = kind
        self.payload = payload
        self.init_active = init_active
        self.send_offsets = send_offsets
        self.send_port = send_port
        self.send_dest = send_dest
        self.send_aport = send_aport


Compiler = Callable[["object", VectorTopology, list], Optional[VectorProgram]]

#: scheme class -> compiler.  Exact-type keyed: a subclass may override
#: behavior, so it gets no compiler unless it registers one itself.
_COMPILERS: Dict[Type, Compiler] = {}


def register_vector_semantics(scheme_cls: Type, compiler: Compiler) -> None:
    """Register a compiler for one scheme class.

    ``compiler(sim, vt, runtimes)`` receives the runtimes in dense node
    order and returns a :class:`VectorProgram`, or ``None`` to decline.
    Future engines/algorithms plug in here with one call.
    """
    _COMPILERS[scheme_cls] = compiler


def compile_program(sim, vt: VectorTopology) -> Optional[VectorProgram]:
    """Compile ``sim``'s scheme population, or ``None`` if inexpressible."""
    runtimes = [sim._runtimes[label] for label in vt.labels]
    if not runtimes:
        return None
    first = type(runtimes[0].process)
    compiler = _COMPILERS.get(first)
    if compiler is None:
        return None
    if any(type(rt.process) is not first for rt in runtimes):
        return None
    return compiler(sim, vt, runtimes)


def _init_active(runtimes) -> np.ndarray:
    return np.fromiter(
        (rt.context.is_source for rt in runtimes), dtype=bool, count=len(runtimes)
    )


def _compile_flooding(sim, vt, runtimes) -> Optional[VectorProgram]:
    from ..algorithms.tree_wakeup import SOURCE_MESSAGE

    # A scheme that already forwarded would stay silent where the program
    # would send; only fresh populations compile.
    if any(rt.process._forwarded for rt in runtimes):
        return None
    return VectorProgram("flood", SOURCE_MESSAGE, _init_active(runtimes))


def _compile_tree_wakeup(sim, vt, runtimes) -> Optional[VectorProgram]:
    from ..algorithms.tree_wakeup import SOURCE_MESSAGE

    if any(rt.process._woken for rt in runtimes):
        return None
    port_lists = [
        safe_decode_children_ports(rt.context.advice, rt.context.degree)
        for rt in runtimes
    ]
    n = len(runtimes)
    counts = np.fromiter(map(len, port_lists), dtype=np.int64, count=n)
    send_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=send_offsets[1:])
    total = int(send_offsets[-1])
    flat = [p for ports in port_lists for p in ports]
    send_port = np.array(flat, dtype=np.int64) if flat else np.zeros(0, np.int64)
    owner = np.repeat(np.arange(n, dtype=np.int64), counts)
    slots = vt.offsets[owner] + send_port
    return VectorProgram(
        "ports",
        SOURCE_MESSAGE,
        _init_active(runtimes),
        send_offsets=send_offsets,
        send_port=send_port,
        send_dest=vt.neighbor_at[slots],
        send_aport=vt.arrival_at[slots],
    )


register_vector_semantics(_FloodingScheme, _compile_flooding)
register_vector_semantics(_TreeWakeupScheme, _compile_tree_wakeup)
