"""Full-map wakeup: maximal knowledge, same optimal message count.

Pairs with :class:`repro.oracles.IndexedFullMapOracle`.  Every node decodes
the complete topology, locally computes the BFS tree every other node also
computes (rooted at index 0, neighbors in port order), finds itself on it,
and — when first holding the source message — forwards it exactly to its
tree children.  Message complexity: ``n - 1``, identical to Theorem 2.1,
for ``Theta(n (n + m) log n)`` advice bits instead of ``Theta(n log n)``.
Knowing *everything* is sufficient; the paper's contribution is how little
is *necessary*.

One contract: all nodes must agree on the tree's root, and the map does not
mark the source, so this algorithm requires the source to be the node with
the smallest label (= map index 0).  :func:`supports` checks a graph;
every default builder in :mod:`repro.network.builders` satisfies it.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List, Optional

from ..core.scheme import Algorithm
from ..encoding import BitString
from ..network.graph import PortLabeledGraph, label_key
from ..oracles.full_map import decode_indexed_map
from ..simulator.node import NodeContext
from .tree_wakeup import SOURCE_MESSAGE

__all__ = ["FullMapWakeup", "supports"]


def supports(graph: PortLabeledGraph) -> bool:
    """True when the graph satisfies this algorithm's contract:
    the source is the node with the smallest label (index 0 in the map)."""
    return graph.source == min(graph.nodes(), key=label_key)


def _children_ports(tables: List[List[int]], own: int) -> List[int]:
    """Ports of ``own`` toward its children in the BFS tree of the map,
    rooted at index 0, exploring neighbors in port order."""
    n = len(tables)
    parent: List[Optional[int]] = [None] * n
    seen = [False] * n
    seen[0] = True
    queue = deque([0])
    while queue:
        u = queue.popleft()
        for neighbor in tables[u]:
            if not seen[neighbor]:
                seen[neighbor] = True
                parent[neighbor] = u
                queue.append(neighbor)
    return [
        port
        for port, neighbor in enumerate(tables[own])
        if parent[neighbor] == own
    ]


class _FullMapScheme:
    def __init__(self) -> None:
        self._woken = False
        self._ports: List[int] = []

    def on_init(self, ctx: NodeContext) -> None:
        decoded = decode_indexed_map(ctx.advice)
        if decoded is not None:
            tables, own = decoded
            ports = _children_ports(tables, own)
            self._ports = [p for p in ports if 0 <= p < ctx.degree]
        if ctx.is_source:
            self._fire(ctx)

    def on_receive(self, ctx: NodeContext, payload, port: int) -> None:
        if payload == SOURCE_MESSAGE and not self._woken:
            self._fire(ctx)

    def _fire(self, ctx: NodeContext) -> None:
        self._woken = True
        for port in self._ports:
            ctx.send(SOURCE_MESSAGE, port)


class FullMapWakeup(Algorithm):
    """Wakeup from complete topology knowledge (source = smallest label)."""

    is_wakeup_algorithm = True
    anonymous_safe = True

    def scheme_for(
        self,
        advice: BitString,
        is_source: bool,
        node_id: Optional[Hashable],
        degree: int,
    ) -> _FullMapScheme:
        return _FullMapScheme()
