"""Tests for the hash-randomization stress harness (``repro sanitize``)."""

import hashlib
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.sanitize import (
    SMOKE_CELLS,
    cell_names,
    format_report,
    run_cell,
    run_matrix,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
SRC = os.path.join(REPO_ROOT, "src")


def _digest_in_subprocess(cell, hash_seed, fastpath="1"):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["REPRO_FASTPATH"] = fastpath
    env["PYTHONPATH"] = SRC
    script = (
        "import hashlib\n"
        "from repro.sanitize import run_cell\n"
        f"print(hashlib.sha256(run_cell({cell!r})).hexdigest())\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return proc.stdout.strip()


class TestGrid:
    def test_grid_covers_all_tasks_and_a_random_scheduler(self):
        tasks = {cell.task for cell in SMOKE_CELLS}
        assert tasks == {"broadcast", "wakeup", "gossip"}
        assert any(cell.scheduler == "random" for cell in SMOKE_CELLS)

    def test_cell_names_are_unique(self):
        names = cell_names()
        assert len(names) == len(set(names))

    def test_unknown_cell_is_a_usage_error(self, capsys):
        assert main(["sanitize", "--cells", "no-such-cell"]) == 2
        assert "unknown sanitize cell" in capsys.readouterr().err


class TestBlobDeterminism:
    def test_run_cell_is_repeatable_in_process(self):
        for name in ("broadcast-kstar-sync", "gossip-complete-sync"):
            assert run_cell(name) == run_cell(name)

    def test_blob_is_canonical_jsonl_plus_summary(self):
        blob = run_cell("gossip-complete-sync").decode("utf-8")
        lines = blob.strip().split("\n")
        assert len(lines) > 1
        import json

        summary = json.loads(lines[-1])
        assert summary["success"] is True
        # Every delivery line carries a payload rendered as a sorted list,
        # never a raw frozenset repr.
        assert "frozenset" not in blob

    def test_gossip_blob_is_byte_identical_across_hash_seeds(self):
        # The headline regression: gossip rumor payloads are frozensets of
        # strings, whose repr order followed PYTHONHASHSEED before the
        # jsonable fix.  Three interpreter launches must agree exactly.
        digests = {
            _digest_in_subprocess("gossip-complete-sync", seed) for seed in (0, 1, 2)
        }
        assert len(digests) == 1

    def test_fastpath_and_reference_engines_agree(self):
        a = _digest_in_subprocess("broadcast-kstar-sync", 0, fastpath="1")
        b = _digest_in_subprocess("broadcast-kstar-sync", 0, fastpath="0")
        assert a == b


class TestMatrix:
    def test_small_matrix_is_identical_and_reports_ok(self):
        names = ["gossip-complete-sync"]
        ok, entries = run_matrix(hash_seeds=(0, 1), cells=names)
        assert ok
        # 2 seeds x 2 engines + 1 repeat
        assert len(entries) == 5
        report = format_report(ok, entries, names)
        assert "byte-identical" in report
        assert "DIVERGED" not in report

    def test_divergence_is_reported_per_entry(self):
        from repro.sanitize import MatrixEntry

        entries = [
            MatrixEntry(label="hashseed=0", digests={"c": "a" * 64}),
            MatrixEntry(label="hashseed=1", digests={"c": "b" * 64}),
        ]
        report = format_report(False, entries, ["c"])
        assert "DIVERGED" in report
        assert "hashseed=1" in report

    def test_cli_exit_zero_on_identical_run(self, capsys):
        assert main(["sanitize", "--hash-seeds", "0", "--cells", "wakeup-kstar-fifo"]) == 0
        assert "byte-identical" in capsys.readouterr().out
