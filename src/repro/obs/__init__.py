"""Observability: structured run telemetry, metrics, and trace export.

This package is the library's measurement substrate.  Three layers:

* **Events** (:mod:`repro.obs.events`) — typed, logical-only records of
  what happened: run boundaries, rounds, sends, deliveries, limit hits,
  audit failures, sweep skips, adversary probes.  Deterministic by
  construction (no timestamps), so same-seed runs produce byte-identical
  JSONL streams.
* **Sinks** (:mod:`repro.obs.sinks`) — where events go: ``NullSink``
  (default, near-zero overhead), ``MemorySink``, ``JSONLSink``, ``TeeSink``.
* **Metrics** (:mod:`repro.obs.metrics`) — counters/gauges/histograms
  derived from events through one shared reducer, plus a separate
  wall-clock ``timings`` registry fed by :meth:`Observation.span`.

Two derived layers sit on top:

* **Causal tracing** (:mod:`repro.obs.causal`) — the happened-before DAG
  of a run, rebuilt from the event stream via the ``cause`` field on
  every send: message lineage, causal depth (== rounds under the
  synchronous scheduler), critical paths, fan-out stats, DOT/JSON export.
* **Profiling** (:mod:`repro.obs.profile`) — nested wall-clock spans with
  self/cumulative time (attach a :class:`Profiler` via
  ``Observation(profile=...)``), exported as Chrome-trace JSON or
  collapsed-stack flamegraph text.  ``repro profile`` is the CLI face.

Usage::

    from repro.obs import Observation, JSONLSink

    with Observation(JSONLSink("run.jsonl")) as obs:
        result = run_broadcast(graph, oracle, algorithm, obs=obs)
    print(obs.metrics.snapshot()["messages_sent"])
    print(obs.timings.snapshot())          # wall-time per phase

``repro trace`` / ``repro stats`` are the CLI faces of this package, and
:mod:`repro.obs.bench` turns pytest-benchmark output into the committed
``BENCH_obs.json`` perf record.
"""

from .events import (
    AdviceComputed,
    AdversaryProbe,
    AuditFailed,
    CellAttemptFailed,
    CellFailed,
    CellResumed,
    CellRetried,
    ConstructionCacheStats,
    Event,
    EVENT_KINDS,
    LimitHit,
    MessageDelivered,
    MessageSent,
    ReplayedEvent,
    RoundStarted,
    RunEnded,
    RunStarted,
    ServiceDrained,
    ServiceRejected,
    ServiceRequestReceived,
    ServiceResponseSent,
    ServiceStarted,
    SpanEnded,
    SpanStarted,
    SweepCellMeasured,
    SweepCellSkipped,
    VerdictRendered,
    jsonable,
)
from .bench import BENCH_SCHEMA, convert_benchmark_json, emit_bench_obs
from .causal import (
    CAUSAL_SCHEMA,
    CausalDag,
    CausalTraceError,
    MessageNode,
    build_causal_dag,
    causal_dag_from_jsonl,
    causal_dags,
)
from .export import (
    per_round_rows,
    read_jsonl,
    replay_metrics,
    run_rows,
    split_runs,
    stats_report,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, apply_event
from .observe import NULL_OBSERVATION, Observation, resolve_obs
from .profile import (
    PhaseStat,
    Profiler,
    SpanRecord,
    chrome_trace,
    chrome_trace_json,
    collapsed_stacks,
)
from .sinks import EventSink, JSONLSink, MemorySink, NullSink, TeeSink, encode_event

__all__ = [
    # events
    "Event",
    "RunStarted",
    "RoundStarted",
    "MessageSent",
    "MessageDelivered",
    "LimitHit",
    "RunEnded",
    "AdviceComputed",
    "AuditFailed",
    "SpanStarted",
    "SpanEnded",
    "SweepCellMeasured",
    "SweepCellSkipped",
    "CellAttemptFailed",
    "CellRetried",
    "CellFailed",
    "CellResumed",
    "ReplayedEvent",
    "AdversaryProbe",
    "ServiceStarted",
    "ServiceRequestReceived",
    "ServiceResponseSent",
    "ServiceRejected",
    "ServiceDrained",
    "ConstructionCacheStats",
    "VerdictRendered",
    "EVENT_KINDS",
    "jsonable",
    # sinks
    "EventSink",
    "NullSink",
    "MemorySink",
    "JSONLSink",
    "TeeSink",
    "encode_event",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "apply_event",
    # observation
    "Observation",
    "NULL_OBSERVATION",
    "resolve_obs",
    # profiler
    "Profiler",
    "SpanRecord",
    "PhaseStat",
    "chrome_trace",
    "chrome_trace_json",
    "collapsed_stacks",
    # causal tracing
    "CAUSAL_SCHEMA",
    "CausalDag",
    "CausalTraceError",
    "MessageNode",
    "build_causal_dag",
    "causal_dags",
    "causal_dag_from_jsonl",
    # export / stats
    "read_jsonl",
    "replay_metrics",
    "split_runs",
    "run_rows",
    "per_round_rows",
    "stats_report",
    # bench emitter
    "BENCH_SCHEMA",
    "convert_benchmark_json",
    "emit_bench_obs",
]
