"""E14 (extension) — time vs oracle content at fixed oracle size.

Regenerates: BFS-tree advice matches flooding's round count at n-1
messages; DFS-tree advice of the same size class can be ~n times slower —
oracle content, not just size, picks the efficiency point.
"""

from conftest import record_experiment, run_once

from repro.analysis import experiment_e14_time, format_experiment


def test_e14_time(benchmark):
    result = run_once(benchmark, experiment_e14_time, n=64)
    record_experiment(benchmark, result)
    print()
    print(format_experiment(result))
    assert all(r["bfs_ok"] and r["dfs_ok"] for r in result.rows)
    assert all(r["bfs_rounds"] <= r["flood_rounds"] for r in result.rows)
    complete = next(r for r in result.rows if r["family"] == "complete")
    assert complete["dfs_rounds"] == 63 and complete["bfs_rounds"] == 1
