"""Port-labeled network model.

The paper's networks are undirected connected graphs in which

* every node has a distinct label,
* the edges incident to a node ``v`` of degree ``deg(v)`` are locally
  numbered by *ports* ``0, 1, ..., deg(v) - 1`` (a bijection per node), and
* one node is distinguished as the *source*.

:class:`PortLabeledGraph` implements exactly that model.  Ports are the
load-bearing feature: algorithms address messages by local port number, not
by neighbor identity, and the broadcast oracle of Theorem 3.1 derives edge
weights ``w(e) = min(port_u(e), port_v(e))`` from them.

The class is mutable during construction and is expected to be frozen
(:meth:`PortLabeledGraph.freeze`) before simulation; the task runners freeze
defensively.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Tuple

import networkx as nx

__all__ = ["PortLabeledGraph", "GraphError", "edge_key", "label_key"]

Node = Hashable
Edge = Tuple[Node, Node]


class GraphError(ValueError):
    """Raised when a graph operation would violate the network model."""


def label_key(v: Node) -> str:
    """Deterministic sort key for a node label: its content-based ``repr``.

    Labels whose ``repr`` falls back to ``object.__repr__`` embed a memory
    address, and set-typed labels render in hash order — orderings built on
    either would differ between runs, so both are rejected outright rather
    than silently producing an unstable order.
    """
    if isinstance(v, (set, frozenset)):
        raise GraphError(
            f"set-typed node label {v!r}: its repr depends on PYTHONHASHSEED "
            "and cannot order nodes deterministically"
        )
    if type(v).__repr__ is object.__repr__:
        raise GraphError(
            f"node label of type {type(v).__name__} has no content-based "
            "repr: the default repr embeds a memory address and cannot "
            "order nodes deterministically"
        )
    return repr(v)


def edge_key(u: Node, v: Node) -> Edge:
    """Canonical representation of the undirected edge ``{u, v}``.

    Endpoints are ordered by their sort key so that ``edge_key(u, v) ==
    edge_key(v, u)``; mixed-type labels fall back to a :func:`label_key`
    (content-repr) order.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if label_key(u) <= label_key(v) else (v, u)


class PortLabeledGraph:
    """An undirected connected graph with per-node port numbering.

    Typical construction::

        g = PortLabeledGraph()
        for v in range(4):
            g.add_node(v)
        g.add_edge(0, 1)          # ports auto-assigned (next free on each side)
        g.add_edge(1, 2, port_u=3, port_v=0)   # explicit ports
        g.set_source(0)
        g.freeze()                # validates the model

    Port numbers may be assigned sparsely during construction; ``freeze``
    verifies that at every node they form exactly ``{0, ..., deg - 1}``.
    """

    def __init__(self) -> None:
        self._port_to_neighbor: Dict[Node, Dict[int, Node]] = {}
        self._neighbor_to_port: Dict[Node, Dict[Node, int]] = {}
        self._source: Optional[Node] = None
        self._frozen = False
        self._compiled = None  # CompiledTopology, attached at freeze()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _check_mutable(self) -> None:
        if self._frozen:
            raise GraphError("graph is frozen; copy it to modify")

    def add_node(self, v: Node) -> None:
        """Add an isolated node with label ``v``."""
        self._check_mutable()
        if v in self._port_to_neighbor:
            raise GraphError(f"duplicate node label {v!r}")
        self._port_to_neighbor[v] = {}
        self._neighbor_to_port[v] = {}

    def add_edge(
        self,
        u: Node,
        v: Node,
        port_u: Optional[int] = None,
        port_v: Optional[int] = None,
    ) -> None:
        """Add the undirected edge ``{u, v}``.

        Explicit port numbers may be given for either endpoint; otherwise the
        smallest unused port at that endpoint is assigned.
        """
        self._check_mutable()
        if u == v:
            raise GraphError("self-loops are not part of the network model")
        for w in (u, v):
            if w not in self._port_to_neighbor:
                raise GraphError(f"unknown node {w!r}; add_node it first")
        if v in self._neighbor_to_port[u]:
            raise GraphError(f"edge {{{u!r}, {v!r}}} already present")
        pu = self._next_port(u) if port_u is None else port_u
        pv = self._next_port(v) if port_v is None else port_v
        for w, p in ((u, pu), (v, pv)):
            if p < 0:
                raise GraphError(f"negative port {p} at node {w!r}")
            if p in self._port_to_neighbor[w]:
                raise GraphError(f"port {p} already used at node {w!r}")
        self._port_to_neighbor[u][pu] = v
        self._port_to_neighbor[v][pv] = u
        self._neighbor_to_port[u][v] = pu
        self._neighbor_to_port[v][u] = pv

    def _next_port(self, v: Node) -> int:
        used = self._port_to_neighbor[v]
        port = 0
        while port in used:
            port += 1
        return port

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``, leaving a port gap to be reassigned."""
        self._check_mutable()
        if v not in self._neighbor_to_port.get(u, {}):
            raise GraphError(f"edge {{{u!r}, {v!r}}} not present")
        pu = self._neighbor_to_port[u].pop(v)
        pv = self._neighbor_to_port[v].pop(u)
        del self._port_to_neighbor[u][pu]
        del self._port_to_neighbor[v][pv]

    def set_port(self, v: Node, neighbor: Node, port: int) -> None:
        """Reassign the port at ``v`` of the edge towards ``neighbor``."""
        self._check_mutable()
        if neighbor not in self._neighbor_to_port.get(v, {}):
            raise GraphError(f"edge {{{v!r}, {neighbor!r}}} not present")
        if port in self._port_to_neighbor[v] and self._port_to_neighbor[v][port] != neighbor:
            raise GraphError(f"port {port} already used at node {v!r}")
        old = self._neighbor_to_port[v][neighbor]
        del self._port_to_neighbor[v][old]
        self._port_to_neighbor[v][port] = neighbor
        self._neighbor_to_port[v][neighbor] = port

    def set_source(self, v: Node) -> None:
        """Designate ``v`` as the source (the node whose status bit is 1)."""
        if v not in self._port_to_neighbor:
            raise GraphError(f"unknown node {v!r}")
        self._source = v

    def freeze(self) -> "PortLabeledGraph":
        """Validate the model and make the graph immutable.  Returns self.

        Freezing also compiles the graph into the flat-array
        :class:`repro.fastpath.CompiledTopology` the simulation fast path
        runs on; the compiled form is cached on the graph (a frozen graph
        cannot change, so the cache never goes stale).
        """
        self.validate()
        self._frozen = True
        from ..fastpath.topology import compile_topology

        self._compiled = compile_topology(self)
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    def copy(self) -> "PortLabeledGraph":
        """A mutable deep copy (the copy is never frozen)."""
        out = PortLabeledGraph()
        for v in self._port_to_neighbor:
            out._port_to_neighbor[v] = dict(self._port_to_neighbor[v])
            out._neighbor_to_port[v] = dict(self._neighbor_to_port[v])
        out._source = self._source
        return out

    def __getstate__(self):
        # The compiled topology is derivable and can be large; rebuild it
        # on the other side instead of shipping it through pickle.
        state = self.__dict__.copy()
        state["_compiled"] = None
        return state

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._port_to_neighbor)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._neighbor_to_port.values()) // 2

    @property
    def source(self) -> Node:
        if self._source is None:
            raise GraphError("no source designated")
        return self._source

    @property
    def has_source(self) -> bool:
        return self._source is not None

    def nodes(self) -> Iterator[Node]:
        """Iterate over node labels (insertion order)."""
        return iter(self._port_to_neighbor)

    def edges(self) -> Iterator[Edge]:
        """Iterate over canonical edges, each reported once."""
        seen: set = set()
        for u, nbrs in self._neighbor_to_port.items():
            for v in nbrs:
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key

    def has_node(self, v: Node) -> bool:
        """Whether a node with label ``v`` exists."""
        return v in self._port_to_neighbor

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return v in self._neighbor_to_port.get(u, {})

    def degree(self, v: Node) -> int:
        """Number of edges incident to ``v``."""
        return len(self._port_to_neighbor[v])

    def neighbors(self, v: Node) -> Iterator[Node]:
        """Iterate over the neighbors of ``v`` (port order not guaranteed)."""
        return iter(self._neighbor_to_port[v])

    def port(self, v: Node, neighbor: Node) -> int:
        """The port number at ``v`` of the edge towards ``neighbor``."""
        try:
            return self._neighbor_to_port[v][neighbor]
        except KeyError:
            raise GraphError(f"edge {{{v!r}, {neighbor!r}}} not present") from None

    def neighbor_via(self, v: Node, port: int) -> Node:
        """The node reached from ``v`` through local port ``port``."""
        try:
            return self._port_to_neighbor[v][port]
        except KeyError:
            raise GraphError(f"no port {port} at node {v!r}") from None

    def ports(self, v: Node) -> List[int]:
        """Sorted list of port numbers at ``v``."""
        return sorted(self._port_to_neighbor[v])

    def edge_weight(self, u: Node, v: Node) -> int:
        """The paper's edge weight ``w(e) = min(port_u(e), port_v(e))``."""
        return min(self.port(u, v), self.port(v, u))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Verify the full network model; raise :class:`GraphError` if violated.

        Checks: at least one node, port bijectivity (``{0..deg-1}`` at every
        node), symmetry of the two port maps, connectivity, and that a source
        is designated.
        """
        if not self._port_to_neighbor:
            raise GraphError("graph has no nodes")
        for v, ports in self._port_to_neighbor.items():
            deg = len(ports)
            if set(ports) != set(range(deg)):
                raise GraphError(
                    f"ports at node {v!r} are {sorted(ports)}, expected 0..{deg - 1}"
                )
            for p, u in ports.items():
                if self._neighbor_to_port[v].get(u) != p:
                    raise GraphError(f"inconsistent port maps at node {v!r}")
                if v not in self._neighbor_to_port.get(u, {}):
                    raise GraphError(f"asymmetric edge {{{v!r}, {u!r}}}")
        if self._source is None:
            raise GraphError("no source designated")
        if not self.is_connected():
            raise GraphError("graph is not connected")

    def is_connected(self) -> bool:
        """BFS connectivity check (no source required)."""
        if not self._port_to_neighbor:
            return False
        start = next(iter(self._port_to_neighbor))
        seen = {start}
        frontier = [start]
        while frontier:
            nxt: List[Node] = []
            for u in frontier:
                for w in self._neighbor_to_port[u]:
                    if w not in seen:
                        seen.add(w)
                        nxt.append(w)
            frontier = nxt
        return len(seen) == len(self._port_to_neighbor)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Export to a :class:`networkx.Graph` with ports as edge attributes.

        Each edge carries ``ports={u: port_u, v: port_v}`` and the graph
        carries ``source`` in ``G.graph``.
        """
        g = nx.Graph()
        g.add_nodes_from(self._port_to_neighbor)
        for u, v in self.edges():
            g.add_edge(u, v, ports={u: self.port(u, v), v: self.port(v, u)})
        if self._source is not None:
            g.graph["source"] = self._source
        return g

    @classmethod
    def from_networkx(
        cls,
        g: nx.Graph,
        source: Optional[Node] = None,
        port_order: str = "sorted",
        rng=None,
    ) -> "PortLabeledGraph":
        """Import a :class:`networkx.Graph`, assigning ports.

        ``port_order`` selects the port assignment when the edges carry no
        ``ports`` attribute:

        * ``"sorted"`` — ports follow the sorted order of neighbor labels
          (deterministic);
        * ``"random"`` — a random permutation per node (pass ``rng``, a
          :class:`random.Random`).

        The source defaults to ``g.graph['source']`` or the smallest label.
        """
        out = cls()
        for v in sorted(g.nodes(), key=label_key):
            out.add_node(v)
        explicit = all("ports" in data for __, __, data in g.edges(data=True)) and g.number_of_edges() > 0
        if explicit:
            for u, v, data in g.edges(data=True):
                out.add_edge(u, v, port_u=data["ports"][u], port_v=data["ports"][v])
        else:
            order: Dict[Node, List[Node]] = {}
            for v in g.nodes():
                nbrs = sorted(g.neighbors(v), key=label_key)
                if port_order == "random":
                    if rng is None:
                        raise GraphError("port_order='random' requires an rng")
                    rng.shuffle(nbrs)
                elif port_order != "sorted":
                    raise GraphError(f"unknown port_order {port_order!r}")
                order[v] = nbrs
            ports: Dict[Node, Dict[Node, int]] = {
                v: {u: i for i, u in enumerate(nbrs)} for v, nbrs in order.items()
            }
            for u, v in g.edges():
                out.add_edge(u, v, port_u=ports[u][v], port_v=ports[v][u])
        if source is None:
            source = g.graph.get("source")
        if source is None:
            source = min(g.nodes(), key=label_key)
        out.set_source(source)
        return out

    def __repr__(self) -> str:
        src = f", source={self._source!r}" if self._source is not None else ""
        return f"PortLabeledGraph(n={self.num_nodes}, m={self.num_edges}{src})"
