"""Property-based hardening of the simulation engine itself.

Hypothesis generates arbitrary (seeded, terminating) schemes and arbitrary
networks; the engine must uphold its contracts regardless of what the
schemes do:

* conservation — a completed run delivered exactly what was sent, and a
  truncated run delivered no more than was sent;
* informedness — the informed set starts at the source and only ever grows,
  and every informed node (except the source) received at least one message
  from an informed sender;
* locality — every delivery is consistent with the graph's port maps;
* determinism — the same seeds give bit-identical traces.

The vectorized classes extend the same treatment to the array engine:
counter equality against the legacy reference over arbitrary ER graphs,
random trees, and ``G_{n,S}`` gadgets; per-round informed-set growth
consistent between the step assignments and the delivery log; round
count equal to the causal depth of the happened-before DAG; and the
implicit gadget pipeline (analytic BFS tree, program counters) pinned to
the explicit one node for node.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.flooding import Flooding
from repro.algorithms.tree_wakeup import TreeWakeup
from repro.core.oracle import NullOracle
from repro.core.tasks import run_broadcast, run_wakeup
from repro.network import random_connected_gnp
from repro.network.builders import random_tree
from repro.network.constructions import sample_edge_tuple, subdivision_family_graph
from repro.obs.causal import build_causal_dag
from repro.obs.observe import Observation
from repro.obs.sinks import MemorySink
from repro.oracles.spanning_tree import SpanningTreeWakeupOracle, build_spanning_tree
from repro.simulator import Simulation, make_scheduler
from repro.vectorized.gadgets import _gadget_tree, gadget_spanning_program
from repro.vectorized import run_batch


class BudgetedRandomScheme:
    """Sends a random (seeded) batch of messages per event, up to a budget.

    Termination is guaranteed: each node sends at most ``budget`` messages
    in total, so the global send count is bounded and quiescence follows.
    """

    def __init__(self, seed: int, budget: int) -> None:
        self._rng = random.Random(seed)
        self._budget = budget

    def _maybe_send(self, ctx) -> None:
        while self._budget > 0 and self._rng.random() < 0.6:
            self._budget -= 1
            port = self._rng.randrange(ctx.degree)
            payload = self._rng.choice(("a", "b", "c"))
            ctx.send(payload, port)

    def on_init(self, ctx) -> None:
        self._maybe_send(ctx)

    def on_receive(self, ctx, payload, port) -> None:
        self._maybe_send(ctx)


def _build(seed: int, n: int):
    rng = random.Random(seed)
    return random_connected_gnp(n, 0.5, rng, port_order="random")


def _run(graph, seed: int, scheduler_name: str, budget: int = 6):
    schemes = {
        v: BudgetedRandomScheme(seed * 1000 + i, budget)
        for i, v in enumerate(sorted(graph.nodes(), key=repr))
    }
    sim = Simulation(
        graph, schemes, scheduler=make_scheduler(scheduler_name, seed)
    )
    return sim.run()


graph_params = st.tuples(
    st.integers(min_value=2, max_value=12),  # n
    st.integers(min_value=0, max_value=10**6),  # graph seed
    st.integers(min_value=0, max_value=10**6),  # scheme seed
    st.sampled_from(("sync", "fifo", "random")),
)


class TestEngineContracts:
    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_conservation(self, params):
        n, gseed, sseed, sched = params
        graph = _build(gseed, n)
        trace = _run(graph, sseed, sched)
        assert trace.completed
        assert len(trace.deliveries) == trace.messages_sent

    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_locality(self, params):
        n, gseed, sseed, sched = params
        graph = _build(gseed, n)
        trace = _run(graph, sseed, sched)
        for d in trace.deliveries:
            assert graph.neighbor_via(d.sender, d.send_port) == d.receiver
            assert graph.port(d.receiver, d.sender) == d.arrival_port

    @settings(max_examples=40, deadline=None)
    @given(graph_params)
    def test_informedness_causality(self, params):
        n, gseed, sseed, sched = params
        graph = _build(gseed, n)
        trace = _run(graph, sseed, sched)
        informed = {graph.source}
        for d in trace.deliveries:
            if d.sender_informed:
                assert d.sender in informed, "flag must reflect sender state at send time or earlier"
                informed.add(d.receiver)
        assert trace.informed_nodes() == informed

    @settings(max_examples=25, deadline=None)
    @given(graph_params)
    def test_determinism(self, params):
        n, gseed, sseed, sched = params
        graph = _build(gseed, n)
        a = _run(graph, sseed, sched)
        b = _run(graph, sseed, sched)
        assert [(d.sender, d.receiver, d.payload) for d in a.deliveries] == [
            (d.sender, d.receiver, d.payload) for d in b.deliveries
        ]

    @settings(max_examples=25, deadline=None)
    @given(graph_params, st.integers(min_value=1, max_value=15))
    def test_truncation_never_over_delivers(self, params, limit):
        n, gseed, sseed, sched = params
        graph = _build(gseed, n)
        schemes = {
            v: BudgetedRandomScheme(sseed * 1000 + i, 6)
            for i, v in enumerate(sorted(graph.nodes(), key=repr))
        }
        trace = Simulation(
            graph,
            schemes,
            scheduler=make_scheduler(sched, sseed),
            max_messages=limit,
        ).run()
        assert trace.messages_sent <= limit or trace.message_limit_hit
        assert len(trace.deliveries) <= trace.messages_sent


def _topology(kind: str, n: int, seed: int):
    """One graph from the three families the vectorized engine must cover."""
    rng = random.Random(seed)
    if kind == "gnp":
        return random_connected_gnp(n, 0.5, rng, port_order="random")
    if kind == "tree":
        return random_tree(n, rng)
    return subdivision_family_graph(n, sample_edge_tuple(n, n, rng))


vector_params = st.tuples(
    st.integers(min_value=4, max_value=14),  # n
    st.integers(min_value=0, max_value=10**6),  # graph seed
    st.sampled_from(("gnp", "tree", "gadget")),
)


class TestVectorizedCounters:
    """The numpy lane against the legacy reference, property-style."""

    @settings(max_examples=25, deadline=None)
    @given(vector_params)
    def test_flooding_counters_match_legacy(self, params):
        n, gseed, kind = params
        graph = _topology(kind, n, gseed)
        runs = {
            engine: run_broadcast(
                graph, NullOracle(), Flooding(),
                trace_level="counters", engine=engine,
            )
            for engine in ("legacy", "vectorized")
        }
        assert runs["vectorized"].trace == runs["legacy"].trace
        assert runs["vectorized"] == runs["legacy"]

    @settings(max_examples=25, deadline=None)
    @given(vector_params)
    def test_tree_wakeup_counters_match_legacy(self, params):
        n, gseed, kind = params
        graph = _topology(kind, n, gseed)
        runs = {
            engine: run_wakeup(
                graph, SpanningTreeWakeupOracle(), TreeWakeup(),
                trace_level="counters", engine=engine,
            )
            for engine in ("legacy", "vectorized")
        }
        assert runs["vectorized"].trace == runs["legacy"].trace
        assert runs["vectorized"] == runs["legacy"]

    @settings(max_examples=20, deadline=None)
    @given(vector_params)
    def test_informed_set_growth_matches_delivery_log(self, params):
        """Counters-lane informed steps agree with the full delivery log.

        The informed set after each round — read off the counters run's
        ``informed_at`` step thresholds — must be exactly the set the
        full run's delivery log implies (receivers of informed senders),
        and it must only ever grow.
        """
        n, gseed, kind = params
        graph = _topology(kind, n, gseed)
        full = run_broadcast(graph, NullOracle(), Flooding(), engine="vectorized")
        counters = run_broadcast(
            graph, NullOracle(), Flooding(),
            trace_level="counters", engine="vectorized",
        )
        per_round = counters.trace.per_round_deliveries()
        informed_from_log = {full.trace.deliveries[0].sender} if full.trace.deliveries else set()
        end_step = 0
        prev: set = set()
        for r in sorted(per_round):
            end_step += per_round[r]
            by_threshold = {
                v for v, s in counters.trace.informed_at.items() if s <= end_step
            }
            for d in full.trace.deliveries:
                if d.round == r and d.sender_informed:
                    informed_from_log.add(d.receiver)
            assert by_threshold == informed_from_log, f"round {r} informed set"
            assert by_threshold >= prev, f"round {r} shrank the informed set"
            prev = by_threshold
        assert prev == counters.trace.informed_nodes()

    @settings(max_examples=20, deadline=None)
    @given(vector_params)
    def test_round_count_equals_causal_depth(self, params):
        """Synchronous flooding: rounds == longest happened-before chain."""
        n, gseed, kind = params
        graph = _topology(kind, n, gseed)
        sink = MemorySink()
        result = run_broadcast(
            graph, NullOracle(), Flooding(),
            obs=Observation(sink), engine="vectorized",
        )
        dag = build_causal_dag(sink.events)
        assert dag.causal_depth == result.trace.rounds


class TestImplicitGadgets:
    """The analytic ``G_{n,S}`` pipeline against the explicit one."""

    gadget_params = st.tuples(
        st.integers(min_value=4, max_value=20),  # n
        st.integers(min_value=0, max_value=10**6),  # edge-tuple seed
    )

    @settings(max_examples=20, deadline=None)
    @given(gadget_params)
    def test_gadget_tree_matches_bfs(self, params):
        """``_gadget_tree`` derives exactly the oracle's BFS tree."""
        n, seed = params
        rng = random.Random(seed)
        edge_tuple = sample_edge_tuple(n, n, rng)
        graph = subdivision_family_graph(n, edge_tuple)
        links = _gadget_tree(n, edge_tuple)
        parent = build_spanning_tree(graph, "bfs")
        assert {c: p for c, p in parent.items() if p is not None} == {
            c: p for c, (p, _pp, _cp) in links.items()
        }
        for child, (par, pport, cport) in links.items():
            assert graph.neighbor_via(par, pport) == child
            assert graph.neighbor_via(child, cport) == par

    @settings(max_examples=15, deadline=None)
    @given(gadget_params)
    def test_program_counters_match_explicit_run(self, params):
        """The implicit program's counters equal the explicit pipeline's."""
        n, seed = params
        rng = random.Random(seed)
        edge_tuple = sample_edge_tuple(n, n, rng)
        graph = subdivision_family_graph(n, edge_tuple)
        explicit = run_wakeup(
            graph, SpanningTreeWakeupOracle(), TreeWakeup(),
            trace_level="counters", engine="vectorized",
        )
        program, oracle_bits = gadget_spanning_program(n, edge_tuple)
        rc = run_batch([program])[0]
        assert oracle_bits == explicit.oracle_bits
        assert rc.messages_sent == explicit.trace.messages_sent
        assert rc.delivered == explicit.trace.delivered
        assert rc.rounds == explicit.trace.rounds
        assert rc.completed == explicit.trace.completed
        assert dict(rc.round_counts) == explicit.trace.per_round_deliveries()
        # informed steps: dense index i holds label i+1
        steps = {
            i + 1: int(s) for i, s in enumerate(rc.informed_step) if s >= 0
        }
        steps[1] = 0  # the source, marked by the caller in apply_counters
        assert steps == explicit.trace.informed_at
