"""Delivery schedulers: who receives next.

The paper's upper bounds are claimed for *totally asynchronous*
communication and its lower bounds already hold for synchronous
communication, so the simulator supports both extremes and adversarial
points in between:

* :class:`SynchronousScheduler` — lockstep rounds: a message sent in round
  ``r`` is delivered in round ``r + 1``; intra-round delivery order is a
  fixed deterministic key, so synchronous executions are reproducible (the
  Theorem 3.2 machinery classifies cliques by their deterministic
  synchronous execution).
* :class:`FIFOLinkScheduler` — asynchronous, but per-link FIFO: the next
  message is the oldest undelivered one on a uniformly chosen active link
  (seeded RNG).
* :class:`RandomScheduler` — fully asynchronous: any in-flight message may
  arrive next (exactly-once, no loss), chosen by a seeded RNG.
* :class:`PriorityScheduler` — adversarial: a user-supplied key function
  ranks in-flight messages; the smallest key is delivered first.  Handy
  adversaries: starve all ``"hello"`` control messages
  (:func:`delay_payload`) or deliver them eagerly (:func:`hurry_payload`).

A scheduler is a small mutable queue: ``push(msg)``, ``pop() -> msg``,
``empty() -> bool``.  The engine owns message creation; the scheduler only
chooses the order.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque
from typing import Callable, Dict, List, Protocol, Tuple

from .messages import InFlightMessage

__all__ = [
    "Scheduler",
    "SynchronousScheduler",
    "FIFOLinkScheduler",
    "RandomScheduler",
    "PriorityScheduler",
    "delay_payload",
    "hurry_payload",
    "make_scheduler",
    "SCHEDULER_NAMES",
]


class Scheduler(Protocol):
    """The queue discipline interface consumed by the engine."""

    def push(self, msg: InFlightMessage) -> None:  # pragma: no cover - protocol
        ...

    def pop(self) -> InFlightMessage:  # pragma: no cover - protocol
        ...

    def empty(self) -> bool:  # pragma: no cover - protocol
        ...


class SynchronousScheduler:
    """Deterministic lockstep rounds (see module docstring)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[Tuple, InFlightMessage]] = []

    def push(self, msg: InFlightMessage) -> None:
        key = (msg.deliver_at, repr(msg.receiver), msg.arrival_port, msg.seq)
        heapq.heappush(self._heap, (key, msg))

    def pop(self) -> InFlightMessage:
        return heapq.heappop(self._heap)[1]

    def empty(self) -> bool:
        return not self._heap


class FIFOLinkScheduler:
    """Asynchronous delivery with per-link FIFO order."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._queues: Dict[Tuple[str, str], deque] = {}
        self._active: List[Tuple[str, str]] = []
        self._size = 0

    def push(self, msg: InFlightMessage) -> None:
        link = (repr(msg.sender), repr(msg.receiver))
        queue = self._queues.get(link)
        if queue is None:
            queue = deque()
            self._queues[link] = queue
        if not queue:
            self._active.append(link)
        queue.append(msg)
        self._size += 1

    def pop(self) -> InFlightMessage:
        index = self._rng.randrange(len(self._active))
        link = self._active[index]
        queue = self._queues[link]
        msg = queue.popleft()
        if not queue:
            self._active[index] = self._active[-1]
            self._active.pop()
        self._size -= 1
        return msg

    def empty(self) -> bool:
        return self._size == 0


class RandomScheduler:
    """Fully asynchronous delivery: uniform choice among in-flight messages."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._pool: List[InFlightMessage] = []

    def push(self, msg: InFlightMessage) -> None:
        self._pool.append(msg)

    def pop(self) -> InFlightMessage:
        index = self._rng.randrange(len(self._pool))
        self._pool[index], self._pool[-1] = self._pool[-1], self._pool[index]
        return self._pool.pop()

    def empty(self) -> bool:
        return not self._pool


class PriorityScheduler:
    """Adversarial delivery: smallest ``key(message)`` first, seq tie-break."""

    def __init__(self, key: Callable[[InFlightMessage], float]) -> None:
        self._key = key
        self._heap: List[Tuple[float, int, InFlightMessage]] = []
        self._counter = itertools.count()

    def push(self, msg: InFlightMessage) -> None:
        heapq.heappush(self._heap, (self._key(msg), next(self._counter), msg))

    def pop(self) -> InFlightMessage:
        return heapq.heappop(self._heap)[2]

    def empty(self) -> bool:
        return not self._heap


def delay_payload(payload) -> PriorityScheduler:
    """Adversary that starves messages with the given payload as long as possible."""
    return PriorityScheduler(lambda m: 1.0 if m.payload == payload else 0.0)


def hurry_payload(payload) -> PriorityScheduler:
    """Adversary that always delivers the given payload first."""
    return PriorityScheduler(lambda m: 0.0 if m.payload == payload else 1.0)


#: Names accepted by :func:`make_scheduler`, used to parameterize benchmarks.
SCHEDULER_NAMES = ("sync", "fifo", "random", "delay-hello", "hurry-hello")


def make_scheduler(name: str, seed: int = 0) -> Scheduler:
    """Build a fresh scheduler by name (see :data:`SCHEDULER_NAMES`)."""
    if name == "sync":
        return SynchronousScheduler()
    if name == "fifo":
        return FIFOLinkScheduler(seed)
    if name == "random":
        return RandomScheduler(seed)
    if name == "delay-hello":
        return delay_payload("hello")
    if name == "hurry-hello":
        return hurry_payload("hello")
    raise ValueError(f"unknown scheduler {name!r}; expected one of {SCHEDULER_NAMES}")
