"""Focused tests for trace statistics helpers and message records."""

from repro.algorithms import Flooding, SchemeB, TreeWakeup
from repro.core import NullOracle, run_broadcast, run_wakeup
from repro.network import complete_graph_star, path_graph
from repro.oracles import LightTreeBroadcastOracle, SpanningTreeWakeupOracle
from repro.simulator import InFlightMessage


class TestTraceStatistics:
    def test_max_edge_traversals_flooding(self):
        # flooding on an even cycle: the two wavefronts meet and cross one
        # edge from both sides
        from repro.network import cycle_graph

        g = cycle_graph(6)
        trace = run_broadcast(g, NullOracle(), Flooding()).trace
        assert trace.max_edge_traversals() == 2

    def test_max_edge_traversals_tree_wakeup(self, k5):
        trace = run_wakeup(k5, SpanningTreeWakeupOracle(), TreeWakeup()).trace
        assert trace.max_edge_traversals() == 1  # M crosses each edge once

    def test_scheme_b_edge_traversals(self, k5):
        # per tree edge: at most one M and at most one hello
        trace = run_broadcast(k5, LightTreeBroadcastOracle(), SchemeB()).trace
        assert trace.max_edge_traversals() <= 2

    def test_last_informed_round(self):
        g = path_graph(4)
        trace = run_broadcast(g, NullOracle(), Flooding()).trace
        assert trace.last_informed_round == 3  # one hop per round down the path

    def test_last_informed_round_no_deliveries(self, triangle):
        from repro.simulator import Simulation

        class Silent:
            def on_init(self, ctx):
                pass

            def on_receive(self, ctx, payload, port):
                pass

        trace = Simulation(triangle, {v: Silent() for v in triangle.nodes()}).run()
        # only the source is informed, at step 0 (pre-run)
        assert trace.last_informed_round == 0

    def test_edges_used_subset_of_graph_edges(self):
        g = complete_graph_star(8)
        trace = run_broadcast(g, NullOracle(), Flooding()).trace
        assert trace.edges_used() <= set(g.edges())

    def test_history_of_matches_received_counts(self, k5):
        result = run_broadcast(k5, NullOracle(), Flooding())
        total = sum(len(result.trace.history_of(v)) for v in k5.nodes())
        assert total == len(result.trace.deliveries)


class TestInFlightMessage:
    def test_defaults_and_frozen(self):
        msg = InFlightMessage(
            payload="x",
            sender=0,
            receiver=1,
            send_port=0,
            arrival_port=2,
            sender_informed=True,
            seq=7,
        )
        assert msg.deliver_at == 0
        try:
            msg.seq = 8
            raised = False
        except AttributeError:
            raised = True
        assert raised, "InFlightMessage must be immutable"
