"""Execution traces and statistics.

Every run produces an :class:`ExecutionTrace`: the global send/delivery log,
per-node histories, informed times, and the counters the paper's theorems
are stated in (total messages above all).  Traces are plain data — the
lower-bound drivers and the tests read them, and
:func:`ExecutionTrace.history_of` reconstructs the exact history object of
Section 1.4 for any node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from .messages import InFlightMessage

__all__ = ["DeliveryRecord", "ExecutionTrace"]


@dataclass(frozen=True)
class DeliveryRecord:
    """One delivered message, in delivery order."""

    step: int
    payload: Any
    sender: Hashable
    receiver: Hashable
    send_port: int
    arrival_port: int
    sender_informed: bool
    round: int


@dataclass
class ExecutionTrace:
    """Complete record of one simulation run."""

    messages_sent: int = 0
    deliveries: List[DeliveryRecord] = field(default_factory=list)
    informed_at: Dict[Hashable, int] = field(default_factory=dict)
    rounds: int = 0
    completed: bool = False
    message_limit_hit: bool = False
    undelivered: List[InFlightMessage] = field(default_factory=list)
    outputs: Dict[Hashable, Any] = field(default_factory=dict)

    def informed_nodes(self) -> Set[Hashable]:
        """Nodes that held the source message when the run ended."""
        return set(self.informed_at)

    def per_round_deliveries(self) -> Dict[int, int]:
        """Delivered-message count per round, ascending by round."""
        counts: Dict[int, int] = {}
        for d in self.deliveries:
            counts[d.round] = counts.get(d.round, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> Dict[str, Any]:
        """The run's headline numbers as one plain dict.

        Keys: ``messages`` (sent), ``delivered``, ``rounds``, ``informed``,
        ``informed_fraction`` (of nodes that ever appear in the trace;
        callers with the graph at hand should divide by ``num_nodes``
        instead), ``undelivered``, ``completed``, ``limit_hit``, and
        ``per_round`` (round -> deliveries).  This is what ``repro
        quickstart`` prints and what :class:`repro.core.TaskResult`
        summaries build on.
        """
        informed = len(self.informed_at)
        participants = set(self.informed_at)
        for d in self.deliveries:
            participants.add(d.sender)
            participants.add(d.receiver)
        return {
            "messages": self.messages_sent,
            "delivered": len(self.deliveries),
            "rounds": self.rounds,
            "informed": informed,
            "informed_fraction": informed / len(participants) if participants else 0.0,
            "undelivered": len(self.undelivered),
            "completed": self.completed,
            "limit_hit": self.message_limit_hit,
            "per_round": self.per_round_deliveries(),
        }

    def history_of(self, node: Hashable) -> List[Tuple[Any, int]]:
        """The (message, arrival port) sequence received by ``node``."""
        return [
            (d.payload, d.arrival_port) for d in self.deliveries if d.receiver == node
        ]

    def messages_with_payload(self, payload: Any) -> int:
        """How many *delivered* messages carried the given payload."""
        return sum(1 for d in self.deliveries if d.payload == payload)

    def edges_used(self) -> Set[Tuple[Hashable, Hashable]]:
        """Undirected edges that carried at least one delivered message."""
        out: Set[Tuple[Hashable, Hashable]] = set()
        for d in self.deliveries:
            u, v = d.sender, d.receiver
            try:
                key = (u, v) if u <= v else (v, u)  # type: ignore[operator]
            except TypeError:
                key = (u, v) if repr(u) <= repr(v) else (v, u)
            out.add(key)
        return out

    def max_edge_traversals(self) -> int:
        """The largest number of messages carried by any single (undirected)
        edge, counting both directions."""
        counts: Dict[Tuple[Hashable, Hashable], int] = {}
        for d in self.deliveries:
            u, v = d.sender, d.receiver
            try:
                key = (u, v) if u <= v else (v, u)  # type: ignore[operator]
            except TypeError:
                key = (u, v) if repr(u) <= repr(v) else (v, u)
            counts[key] = counts.get(key, 0) + 1
        return max(counts.values(), default=0)

    def payload_alphabet(self) -> Set[Any]:
        """Distinct payloads observed; small = bounded-size messages."""
        return {d.payload for d in self.deliveries}

    @property
    def last_informed_round(self) -> Optional[int]:
        """Round at which the final node became informed, if any did."""
        if not self.informed_at:
            return None
        steps = {d.step: d.round for d in self.deliveries}
        return max(steps.get(s, 0) for s in self.informed_at.values())
