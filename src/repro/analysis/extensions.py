"""Extension experiments E9-E13: the paper's conclusion, made runnable.

The conclusion of the paper conjectures that (a) oracle size can measure
the difficulty of tasks beyond broadcast/wakeup — naming gossip and
spanner construction — and (b) oracles can chart *precise tradeoffs*
between knowledge and efficiency.  These experiments implement both
conjectures inside the paper's own formalism:

* **E9 (tradeoff)** — sweep :class:`repro.oracles.DepthLimitedTreeOracle`
  from depth 0 (pure flooding) to full depth (pure Theorem 2.1) and record
  the advice-vs-messages curve of the hybrid wakeup: a monotone frontier
  between (0 bits, ``2m - n + 1`` msgs) and (``~n log n`` bits, ``n - 1``
  msgs).
* **E10 (gossip)** — measure gossip the way the paper measures
  broadcast/wakeup: the :class:`repro.oracles.GossipTreeOracle` +
  :class:`repro.algorithms.TreeGossip` pair completes gossip in exactly
  ``2(n - 1)`` messages with ``Theta(n log n)`` advice, against the
  zero-advice flooding gossip's ``Theta(n * m)``.
* **E11 (construction)** — spanning-tree construction as an *output* task:
  the parent-pointer oracle solves it with zero messages; a DFS token
  rebuilds the same tree for ``Theta(m)`` messages.
* **E12 (election)** — the intro's first-listed problem: one advice bit
  elects a leader silently; zero advice costs ``Theta(n*m)`` with ids and
  is *impossible* anonymously on symmetric networks.
* **E13 (exploration)** — a mobile agent with tree advice tours in exactly
  ``2(n-1)`` moves with no memory and halts; without advice it needs
  memory and ``Theta(m)`` moves, or cannot even detect completion.

They are clearly flagged as extensions: the paper proves none of them; it
asks for all of them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..algorithms.flood_gossip import FloodGossip
from ..algorithms.hybrid_wakeup import HybridTreeFloodWakeup
from ..algorithms.tree_gossip import TreeGossip
from ..core.gossip import run_gossip
from ..core.oracle import NullOracle
from ..core.tasks import run_wakeup
from ..network.builders import FAMILY_BUILDERS
from ..oracles.gossip_tree import GossipTreeOracle
from ..oracles.tradeoff import DepthLimitedTreeOracle, bfs_depths
from .result import ExperimentResult
from .fits import classify_growth
from .series import growth_finding_series

__all__ = [
    "experiment_e9_tradeoff",
    "experiment_e10_gossip",
    "experiment_e11_construction",
    "experiment_e12_election",
    "experiment_e13_exploration",
    "experiment_e14_time",
]


def experiment_e9_tradeoff(
    n: int = 64,
    families: Sequence[str] = ("grid", "gnp_sparse", "complete"),
) -> ExperimentResult:
    """Advice-vs-messages frontier of the depth-limited tree oracle."""
    rows: List[Dict[str, Any]] = []
    for family in families:
        graph = FAMILY_BUILDERS[family](n)
        max_depth = max(bfs_depths(graph).values()) + 1
        depths = sorted({0, 1, max_depth // 4, max_depth // 2, 3 * max_depth // 4, max_depth})
        for depth in depths:
            oracle = DepthLimitedTreeOracle(depth)
            result = run_wakeup(graph, oracle, HybridTreeFloodWakeup())
            rows.append(
                {
                    "family": family,
                    "n": graph.num_nodes,
                    "depth": depth,
                    "advised": oracle.advised_nodes(graph),
                    "oracle_bits": result.oracle_bits,
                    "messages": result.messages,
                    "n-1": graph.num_nodes - 1,
                    "success": result.success,
                }
            )
    findings = []
    ok = all(r["success"] for r in rows)
    findings.append(f"hybrid wakeup completed at every depth cut: {ok}")
    for family in families:
        frows = [r for r in rows if r["family"] == family]
        msgs = [r["messages"] for r in frows]
        monotone = all(a >= b for a, b in zip(msgs, msgs[1:]))
        findings.append(
            f"{family}: messages fall {msgs[0]} -> {msgs[-1]} as advice grows "
            f"{frows[0]['oracle_bits']} -> {frows[-1]['oracle_bits']} bits "
            f"(monotone: {monotone})"
        )
    full = [r for r in rows if r["messages"] == r["n-1"]]
    findings.append(
        f"the Theorem 2.1 endpoint (exactly n-1 messages) is reached at full "
        f"depth on {len({r['family'] for r in full})}/{len(families)} families"
    )
    return ExperimentResult(
        "E9",
        "Extension — knowledge/efficiency tradeoff (conclusion conjecture b)",
        rows,
        findings,
    )


def experiment_e10_gossip(
    sizes: Sequence[int] = (8, 16, 32, 64),
    families: Sequence[str] = ("complete", "gnp_sparse", "random_tree"),
) -> ExperimentResult:
    """Gossip with and without advice, measured like the paper's tasks."""
    rows: List[Dict[str, Any]] = []
    for family in families:
        for n in sizes:
            try:
                graph = FAMILY_BUILDERS[family](n)
            except Exception:
                continue
            nn = graph.num_nodes
            tree = run_gossip(graph, GossipTreeOracle(), TreeGossip())
            flood = run_gossip(graph, NullOracle(), FloodGossip())
            rows.append(
                {
                    "family": family,
                    "n": nn,
                    "m": graph.num_edges,
                    "tree_bits": tree.oracle_bits,
                    "tree_msgs": tree.messages,
                    "2(n-1)": 2 * (nn - 1),
                    "flood_msgs": flood.messages,
                    "tree_ok": tree.success,
                    "flood_ok": flood.success,
                }
            )
    findings = []
    exact = all(r["tree_msgs"] == r["2(n-1)"] for r in rows)
    findings.append(f"tree gossip used exactly 2(n-1) messages on every run: {exact}")
    findings.append(
        f"all runs complete: {all(r['tree_ok'] and r['flood_ok'] for r in rows)}"
    )
    for series in growth_finding_series(rows, "tree_bits", experiment="E10"):
        fits = classify_growth(series.xs, series.ys)
        findings.append(f"{series.group}: gossip advice best fit {fits[0]}")
    dense = [r for r in rows if r["family"] == "complete"]
    if dense:
        worst = max(dense, key=lambda r: r["flood_msgs"] / r["tree_msgs"])
        findings.append(
            f"flooding gossip pays up to {worst['flood_msgs'] / worst['tree_msgs']:.0f}x "
            f"more messages than tree gossip (complete, n={worst['n']})"
        )
    return ExperimentResult(
        "E10",
        "Extension — gossip measured by oracle size (conclusion conjecture a)",
        rows,
        findings,
    )


def experiment_e11_construction(
    sizes: Sequence[int] = (8, 16, 32, 64),
    families: Sequence[str] = ("complete", "gnp_sparse", "grid"),
) -> ExperimentResult:
    """Spanning-tree construction: knowledge substitutes for communication.

    The advised endpoint outputs a valid rooted tree with **zero** messages
    (the parent-pointer oracle is the answer); the zero-advice endpoint
    rebuilds the same object with a ``Theta(m)``-message DFS token.  This is
    the conclusion's "spanner construction" conjecture in its simplest
    instance (E11).
    """
    from ..algorithms.tree_construction import (
        AdvisedTreeConstruction,
        DFSTreeConstruction,
    )
    from ..core.construction import run_tree_construction
    from ..oracles.parent_pointer import ParentPointerOracle

    rows: List[Dict[str, Any]] = []
    for family in families:
        for n in sizes:
            try:
                graph = FAMILY_BUILDERS[family](n)
            except Exception:
                continue
            advised = run_tree_construction(
                graph, ParentPointerOracle(), AdvisedTreeConstruction()
            )
            dfs = run_tree_construction(graph, NullOracle(), DFSTreeConstruction())
            rows.append(
                {
                    "family": family,
                    "n": graph.num_nodes,
                    "m": graph.num_edges,
                    "oracle_bits": advised.oracle_bits,
                    "advised_msgs": advised.messages,
                    "dfs_msgs": dfs.messages,
                    "advised_ok": advised.success,
                    "dfs_ok": dfs.success,
                }
            )
    findings = [
        f"advised construction used zero messages on every run: "
        f"{all(r['advised_msgs'] == 0 for r in rows)}",
        f"all trees verified structurally: "
        f"{all(r['advised_ok'] and r['dfs_ok'] for r in rows)}",
    ]
    dense = [r for r in rows if r["family"] == "complete"]
    if dense:
        worst = max(dense, key=lambda r: r["dfs_msgs"])
        findings.append(
            f"DFS pays Theta(m): up to {worst['dfs_msgs']} messages at n={worst['n']} "
            f"(m={worst['m']}) where the oracle pays {worst['oracle_bits']} bits and 0 messages"
        )
    return ExperimentResult(
        "E11",
        "Extension — spanning-tree construction (conclusion conjecture a)",
        rows,
        findings,
    )


def experiment_e12_election(
    sizes: Sequence[int] = (8, 16, 32, 64),
    families: Sequence[str] = ("complete", "gnp_sparse", "cycle"),
) -> ExperimentResult:
    """Leader election: one advice bit, or Theta(n*m) messages, or neither.

    The three regimes of the intro's first-listed problem (E12): the 1-bit
    oracle solves election silently; zero advice with unique ids costs
    flooding; zero advice anonymously is *impossible* on symmetric networks
    — the classical impossibility, exhibited concretely on rings.
    """
    from ..algorithms.election import AdvisedElection, MinIdElection
    from ..core.election import run_election
    from ..network.builders import cycle_graph
    from ..oracles.leader_bit import LeaderBitOracle

    rows: List[Dict[str, Any]] = []
    for family in families:
        for n in sizes:
            try:
                graph = FAMILY_BUILDERS[family](n)
            except Exception:
                continue
            advised = run_election(graph, LeaderBitOracle(), AdvisedElection())
            minid = run_election(graph, NullOracle(), MinIdElection())
            rows.append(
                {
                    "family": family,
                    "n": graph.num_nodes,
                    "m": graph.num_edges,
                    "1bit_msgs": advised.messages,
                    "minid_msgs": minid.messages,
                    "advised_ok": advised.success,
                    "minid_ok": minid.success,
                }
            )
    # the impossibility: anonymous deterministic election on symmetric rings
    impossibility: List[str] = []
    for n in (4, 6, 8, 12):
        ring = cycle_graph(n)
        anon = run_election(ring, NullOracle(), MinIdElection(), anonymous=True)
        impossibility.append(f"ring n={n}: {anon.leaders} leaders")
        rows.append(
            {
                "family": "ring/anonymous",
                "n": n,
                "m": n,
                "1bit_msgs": "-",
                "minid_msgs": anon.messages,
                "advised_ok": "-",
                "minid_ok": anon.success,
            }
        )
    findings = [
        f"the 1-bit oracle elected exactly one leader with zero messages on every run: "
        f"{all(r['advised_ok'] is True for r in rows if r['advised_ok'] != '-')}",
        f"min-id flooding elected correctly with zero advice (ids required) everywhere: "
        f"{all(r['minid_ok'] is True for r in rows if r['family'] != 'ring/anonymous')}",
        "anonymous + symmetric ring: every node stays in an identical state, so all "
        f"elect themselves — {'; '.join(impossibility)} (the classical impossibility, "
        "and one advice bit dissolves it)",
    ]
    return ExperimentResult(
        "E12",
        "Extension — leader election measured by oracle size",
        rows,
        findings,
    )


def experiment_e13_exploration(
    sizes: Sequence[int] = (8, 16, 32, 64),
    families: Sequence[str] = ("complete", "gnp_sparse", "grid"),
) -> ExperimentResult:
    """Graph exploration by a mobile agent, in three knowledge regimes.

    E13: the conclusion's "exploration by mobile agents" conjecture.  Tree
    advice gives a *memoryless* agent an optimal ``2(n-1)``-move tour that
    halts; memory without advice costs ``Theta(m)`` moves (DFS); rotor
    walking covers the graph but can never know it is done.
    """
    from ..agent import (
        AdvisedTreeExplorer,
        DFSExplorer,
        RotorRouterExplorer,
        run_exploration,
    )
    from ..oracles.gossip_tree import GossipTreeOracle

    rows: List[Dict[str, Any]] = []
    for family in families:
        for n in sizes:
            try:
                graph = FAMILY_BUILDERS[family](n)
            except Exception:
                continue
            nn, m = graph.num_nodes, graph.num_edges
            advised = run_exploration(graph, GossipTreeOracle(), AdvisedTreeExplorer())
            dfs = run_exploration(graph, NullOracle(), DFSExplorer())
            # rotor-router cover time is O(m * diameter); 2*m*n is safely above
            budget = 2 * m * nn
            rotor = run_exploration(
                graph,
                NullOracle(),
                RotorRouterExplorer(budget=budget),
                max_moves=budget + 1,
            )
            rows.append(
                {
                    "family": family,
                    "n": nn,
                    "m": m,
                    "oracle_bits": advised.oracle_bits,
                    "advised_moves": advised.moves,
                    "2(n-1)": 2 * (nn - 1),
                    "dfs_moves": dfs.moves,
                    "rotor_moves": rotor.moves,
                    "advised_ok": advised.success,
                    "dfs_ok": dfs.success,
                    "rotor_covered": rotor.visited == nn,
                }
            )
    findings = [
        f"the advised (memoryless!) agent toured in exactly 2(n-1) moves and halted: "
        f"{all(r['advised_moves'] == r['2(n-1)'] and r['advised_ok'] for r in rows)}",
        f"zero-advice DFS (agent memory + labels) explored everywhere at Theta(m) moves: "
        f"{all(r['dfs_ok'] for r in rows)}",
        f"rotor-router covered every graph within its O(m*D) budget but cannot halt on its own: "
        f"{all(r['rotor_covered'] for r in rows)} — even the right to halt is knowledge",
    ]
    return ExperimentResult(
        "E13",
        "Extension — exploration by a mobile agent measured by oracle size",
        rows,
        findings,
    )


def experiment_e14_time(
    n: int = 64,
    families: Sequence[str] = ("cycle", "grid", "gnp_sparse", "complete"),
) -> ExperimentResult:
    """Time (rounds) vs oracle *content* at fixed oracle size (E14).

    The introduction notes that efficiency demands may be stated in time as
    well as messages.  Here the same oracle-size family — children-port
    advice over a spanning tree — is instantiated with two tree shapes:

    * BFS tree: wakeup time = eccentricity of the source (optimal up to 1
      round vs flooding, at a small fraction of flooding's messages);
    * DFS tree: same oracle size, same ``n - 1`` messages, but time up to
      ``n - 1`` rounds (a path on ``K*_n``).

    Moral: oracle *size* bounds what tasks are achievable; oracle *content*
    decides which efficiency point inside that budget you get.
    """
    from ..algorithms.flooding import Flooding
    from ..algorithms.tree_wakeup import TreeWakeup
    from ..oracles.spanning_tree import SpanningTreeWakeupOracle

    rows: List[Dict[str, Any]] = []
    for family in families:
        graph = FAMILY_BUILDERS[family](n)
        nn = graph.num_nodes
        flood = run_wakeup(graph, NullOracle(), Flooding())
        entry: Dict[str, Any] = {
            "family": family,
            "n": nn,
            "flood_rounds": flood.rounds,
            "flood_msgs": flood.messages,
        }
        for kind in ("bfs", "dfs"):
            result = run_wakeup(graph, SpanningTreeWakeupOracle(kind), TreeWakeup())
            entry[f"{kind}_rounds"] = result.rounds
            entry[f"{kind}_msgs"] = result.messages
            entry[f"{kind}_bits"] = result.oracle_bits
            entry[f"{kind}_ok"] = result.success
        rows.append(entry)
    findings = [
        f"all runs complete with exactly n-1 messages: "
        f"{all(r['bfs_ok'] and r['dfs_ok'] and r['bfs_msgs'] == r['dfs_msgs'] == r['n'] - 1 for r in rows)}",
        f"BFS-tree advice matches flooding's time within one round everywhere: "
        f"{all(r['bfs_rounds'] <= r['flood_rounds'] for r in rows)}",
        f"DFS-tree advice (same size class) is never faster and can be ~n slower: "
        f"{all(r['dfs_rounds'] >= r['bfs_rounds'] for r in rows)} "
        f"(complete graph: {next(r for r in rows if r['family'] == 'complete')['dfs_rounds']} "
        f"vs {next(r for r in rows if r['family'] == 'complete')['bfs_rounds']} rounds)",
    ]
    return ExperimentResult(
        "E14",
        "Extension — time vs oracle content at fixed oracle size",
        rows,
        findings,
    )
