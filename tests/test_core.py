"""Tests for the core abstractions: oracles, schemes, task runners."""

import pytest

from repro.core import (
    AdviceMap,
    FullMapOracle,
    FunctionalAlgorithm,
    History,
    NullOracle,
    TruncatingOracle,
    default_message_limit,
    run_broadcast,
    run_wakeup,
    sends,
)
from repro.encoding import BitString
from repro.oracles import SpanningTreeWakeupOracle
from repro.simulator import WakeupViolation


class TestAdviceMap:
    def test_total_bits(self):
        m = AdviceMap({0: BitString("101"), 1: BitString("1")})
        assert m.total_bits() == 4
        assert m.nonempty_nodes() == 2

    def test_missing_nodes_get_empty(self):
        m = AdviceMap({0: BitString("1")})
        assert m[99] == BitString.empty()
        assert 99 in m  # every node has (possibly empty) advice

    def test_empty_strings_dropped(self):
        m = AdviceMap({0: BitString(""), 1: BitString("1")})
        assert m.nonempty_nodes() == 1
        assert len(m) == 1

    def test_mapping_protocol(self):
        m = AdviceMap({0: BitString("11")})
        assert list(iter(m)) == [0]
        assert dict(m) == {0: BitString("11")}


class TestTrivialOracles:
    def test_null_oracle(self, k5):
        assert NullOracle().size_on(k5) == 0
        assert NullOracle().name == "NullOracle"

    def test_full_map_oracle_size(self, k5):
        oracle = FullMapOracle()
        advice = oracle.advise(k5)
        blob = FullMapOracle.encode_graph(k5)
        # every node carries the same serialization
        assert advice.total_bits() == k5.num_nodes * len(blob)
        assert all(advice[v] == blob for v in k5.nodes())

    def test_full_map_much_bigger_than_paper_oracles(self, k5):
        assert FullMapOracle().size_on(k5) > SpanningTreeWakeupOracle().size_on(k5)


class TestTruncatingOracle:
    def test_zero_budget(self, k5):
        t = TruncatingOracle(SpanningTreeWakeupOracle(), 0)
        assert t.size_on(k5) == 0

    def test_full_budget_is_identity(self, k5):
        inner = SpanningTreeWakeupOracle()
        full = inner.size_on(k5)
        t = TruncatingOracle(inner, full)
        assert t.size_on(k5) == full

    def test_partial_budget(self, k5):
        inner = SpanningTreeWakeupOracle()
        full = inner.size_on(k5)
        budget = full // 2
        t = TruncatingOracle(inner, budget)
        assert t.size_on(k5) == budget

    def test_negative_budget(self):
        with pytest.raises(ValueError):
            TruncatingOracle(NullOracle(), -1)

    def test_name_mentions_cap(self):
        assert "cap=5" in TruncatingOracle(NullOracle(), 5).name


class TestHistory:
    def test_extended(self):
        h = History(BitString("1"), True, 7, 3)
        assert h.empty
        h2 = h.extended("M", 1)
        assert not h2.empty
        assert h2.received == (("M", 1),)
        assert h.received == ()  # immutable

    def test_quadruple_fields(self):
        h = History(BitString("01"), False, "v", 4)
        assert (h.advice, h.is_source, h.node_id, h.degree) == (
            BitString("01"),
            False,
            "v",
            4,
        )


class TestFunctionalAlgorithm:
    def _spray_function(self, advice, is_source, node_id, degree):
        def scheme(history):
            if history.empty and history.is_source:
                return sends(*(("M", p) for p in range(history.degree)))
            return []

        return scheme

    def test_functional_broadcast(self, triangle):
        algo = FunctionalAlgorithm(self._spray_function, name="spray")
        result = run_broadcast(triangle, NullOracle(), algo)
        assert result.messages == 2
        assert result.informed == 3
        assert result.algorithm_name == "spray"

    def test_functional_forwarding_completes(self, path4):
        def factory(advice, is_source, node_id, degree):
            def scheme(history):
                if history.empty:
                    if history.is_source:
                        return sends(*(("M", p) for p in range(history.degree)))
                    return []
                # forward on first receipt only
                if len(history.received) == 1:
                    payload, port = history.received[0]
                    return sends(
                        *((payload, p) for p in range(history.degree) if p != port)
                    )
                return []

            return scheme

        algo = FunctionalAlgorithm(factory, wakeup=True)
        result = run_wakeup(path4, NullOracle(), algo)
        assert result.success
        assert result.messages == 3

    def test_functional_wakeup_violation(self, triangle):
        def factory(advice, is_source, node_id, degree):
            return lambda history: sends(("x", 0)) if history.empty else []

        algo = FunctionalAlgorithm(factory)
        with pytest.raises(WakeupViolation):
            run_wakeup(triangle, NullOracle(), algo)


class TestTaskRunners:
    def test_result_fields(self, k5):
        from repro.algorithms import Flooding

        result = run_broadcast(k5, NullOracle(), Flooding())
        assert result.task == "broadcast"
        assert result.graph_nodes == 5
        assert result.graph_edges == 10
        assert result.oracle_bits == 0
        assert result.success and result.completed
        assert result.informed == 5
        assert result.bits_per_node == 0
        assert result.messages_per_node == pytest.approx(result.messages / 5)
        assert "broadcast" in result.summary()

    def test_default_message_limit_generous(self, k5):
        from repro.algorithms import Flooding, flooding_message_count

        limit = default_message_limit(k5)
        assert limit > flooding_message_count(k5.num_nodes, k5.num_edges)

    def test_precomputed_advice_reused(self, k5):
        from repro.algorithms import TreeWakeup

        oracle = SpanningTreeWakeupOracle()
        advice = oracle.advise(k5)
        result = run_wakeup(k5, oracle, TreeWakeup(), advice=advice)
        assert result.oracle_bits == advice.total_bits()
        assert result.success

    def test_unfrozen_graph_accepted(self):
        from repro.algorithms import Flooding
        from repro.network import PortLabeledGraph

        g = PortLabeledGraph()
        g.add_node(0)
        g.add_node(1)
        g.add_edge(0, 1)
        g.set_source(0)  # not frozen
        result = run_broadcast(g, NullOracle(), Flooding())
        assert result.success


class TestAdviceSerialization:
    def test_roundtrip(self, k5):
        from repro.core import advice_from_json, advice_to_json

        advice = SpanningTreeWakeupOracle().advise(k5)
        back = advice_from_json(advice_to_json(advice))
        assert back.total_bits() == advice.total_bits()
        for v in k5.nodes():
            assert back[v] == advice[v]

    def test_tuple_labels(self):
        from repro.core import advice_from_json, advice_to_json
        from repro.encoding import BitString

        advice = AdviceMap({(0, 1): BitString("101")})
        back = advice_from_json(advice_to_json(advice))
        assert back[(0, 1)] == BitString("101")

    def test_deterministic(self, k5):
        from repro.core import advice_to_json

        advice = SpanningTreeWakeupOracle().advise(k5)
        assert advice_to_json(advice) == advice_to_json(advice)

    def test_replay_in_task(self, k5):
        from repro.algorithms import TreeWakeup
        from repro.core import advice_from_json, advice_to_json

        oracle = SpanningTreeWakeupOracle()
        saved = advice_to_json(oracle.advise(k5))
        result = run_wakeup(k5, oracle, TreeWakeup(), advice=advice_from_json(saved))
        assert result.success
        assert result.messages == 4
