#!/usr/bin/env python3
"""Gate performance: compare a fresh repro-bench export to its baseline.

Usage:

    python scripts/check_bench_regression.py BASELINE FRESH [--tolerance 0.25]
    python scripts/check_bench_regression.py --explain BENCH [BENCH ...]

``--explain`` prints a per-key value/delta table (baseline -> current when
two or more files are given, values and gate classification for one) and
always exits 0 — the inspection face of the same tables the gate reads.

Both files are ``repro-bench/1`` exports (``python -m repro bench-export``).
Which numbers are gated is a per-benchmark table (:data:`GATED_BENCHMARKS`):

* ``test_engine_per_delivery`` (``BENCH_engine.json``) — the ``*_fast_ns``
  and ``*_counters_ns`` per-delivery keys; ``*_legacy_ns`` is reported but
  never gated (the legacy loop is the frozen reference implementation, and
  its cost only moves when the host does).
* ``test_vectorized_per_delivery`` (``BENCH_engine.json``) — the
  ``*_vectorized_ns`` per-delivery keys and the multi-seed
  ``mega_batch_ns``; the ``*_fast_counters_ns`` baseline re-measurements
  and the ``*_speedup`` ratios are informational (the >= 5x floor is
  asserted inside the benchmark itself, where both numbers come from the
  same process on the same host).
* ``test_profile_overhead`` (``BENCH_profile.json``) — the
  ``*_profiled_ns`` per-delivery keys (engine cost with a profiler
  attached but sinks off); the ``*_off_ns`` plain-run numbers and the
  ``*_overhead_frac`` ratios are informational here (the <10% absolute
  overhead cap is asserted inside the benchmark itself, where the two
  numbers come from the same process on the same host).

The check fails (exit 1) if any gated fresh number exceeds its baseline
by more than ``tolerance`` (default 25% — wide on purpose: CI containers
are noisy single-CPU hosts, and the asserted margins clear 25% long
before the headline claims are threatened).  Getting *faster* is always
fine — the baseline is a ceiling, not a pin; refresh the committed
baseline when improvements make it stale.  Setup problems (missing file,
bad schema, mismatched keys) exit 2, distinct from a perf verdict.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Tuple

#: benchmark name -> (gated key suffixes, reported-but-ungated key suffixes).
#: A benchmark absent from one export is simply not checked by that
#: invocation; the CI pipeline runs this script once per BENCH file.
GATED_BENCHMARKS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "test_engine_per_delivery": (
        ("_fast_ns", "_counters_ns"),
        ("_legacy_ns",),
    ),
    "test_vectorized_per_delivery": (
        ("_vectorized_ns", "mega_batch_ns"),
        ("_fast_counters_ns", "_vectorized_speedup"),
    ),
    "test_profile_overhead": (
        ("_profiled_ns",),
        ("_off_ns", "_causal_ns", "_overhead_frac"),
    ),
    # The serving daemon (BENCH_service.json): the warm-phase absolutes are
    # the product promise, so they are gated; the cold numbers and the
    # warm/cold ratio are informational (the >= 5x floor is asserted inside
    # the benchmark itself, where both phases share one process and host).
    "test_service_replay": (
        ("warm_p99_us", "warm_us_per_req"),
        (
            "cold_p50_us", "cold_p99_us", "cold_us_per_req", "cold_rps",
            "warm_p50_us", "warm_rps", "warm_speedup",
            "distinct_requests", "total_requests", "concurrency",
            "served", "cache_hits", "cache_misses",
        ),
    ),
}


def _usage_error(message: str) -> None:
    """Setup/input problems exit 2, distinct from a perf regression (1)."""
    print(f"error: {message}", file=sys.stderr)
    raise SystemExit(2)


def gated_numbers(path: str) -> Dict[str, Tuple[float, bool]]:
    """``{key: (value, gated?)}`` across every tabled benchmark in one
    repro-bench/1 export.

    A missing or unparsable file is a harness/setup problem, not a perf
    verdict: report it as a usage error (exit 2) instead of a traceback.
    So is an export containing none of the tabled benchmarks.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        _usage_error(f"cannot read BENCH file {path!r}: {exc}")
    except json.JSONDecodeError as exc:
        _usage_error(f"BENCH file {path!r} is not valid JSON: {exc}")
    if not isinstance(data, dict):
        _usage_error(f"BENCH file {path!r} is not a JSON object")
    schema = data.get("schema")
    if schema != "repro-bench/1":
        _usage_error(f"{path}: unexpected schema {schema!r}")
    numbers: Dict[str, Tuple[float, bool]] = {}
    matched = False
    for bench in data.get("benchmarks", []):
        table = GATED_BENCHMARKS.get(bench.get("name"))
        if table is None:
            continue
        matched = True
        gated_suffixes, info_suffixes = table
        for key, value in bench.get("extra_info", {}).items():
            if key.endswith(gated_suffixes):
                numbers[key] = (float(value), True)
            elif key.endswith(info_suffixes):
                numbers[key] = (float(value), False)
    if not matched:
        _usage_error(
            f"{path}: no gated benchmark record "
            f"(expected one of {sorted(GATED_BENCHMARKS)})"
        )
    return numbers


#: Schema tag for the --json output, versioned like repro-bench/1.
GATE_SCHEMA = "repro-bench-gate/1"


def explain(paths, as_json: bool = False) -> int:
    """Per-key tables for any number of BENCH files; never a verdict.

    One file prints its keys with values and gate classification; two or
    more print baseline -> current deltas (first file is the baseline).
    Always exits 0 — this is the debugging face of the gate, for reading
    *why* a check passed or failed, not a second enforcement path.
    With ``as_json`` the same tables render as one machine-readable
    document (for CI annotations) instead of text.
    """
    tables = [(path, gated_numbers(path)) for path in paths]
    if as_json:
        document = {
            "schema": GATE_SCHEMA,
            "mode": "explain",
            "files": [
                {
                    "path": path,
                    "keys": [
                        {"key": key, "value": value, "gated": gated}
                        for key, (value, gated) in sorted(numbers.items())
                    ],
                }
                for path, numbers in tables
            ],
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    if len(tables) == 1:
        path, numbers = tables[0]
        print(f"{path}: {len(numbers)} tabled key(s)")
        for key in sorted(numbers):
            value, gated = numbers[key]
            kind = "gated" if gated else "info"
            print(f"  {key:42s} {value:14.4f} [{kind}]")
        return 0
    base_path, base = tables[0]
    for path, current in tables[1:]:
        print(f"{base_path} (baseline) -> {path}: ")
        for key in sorted(set(base) | set(current)):
            gated = (base.get(key) or current[key])[1]
            kind = "gated" if gated else "info"
            if key not in base:
                print(f"  {key:42s} {'(absent)':>14s} -> {current[key][0]:14.4f} [{kind}]")
                continue
            if key not in current:
                print(f"  {key:42s} {base[key][0]:14.4f} -> {'(absent)':>14s} [{kind}]")
                continue
            base_value, current_value = base[key][0], current[key][0]
            if base_value > 0:
                delta = f"{current_value / base_value - 1.0:+7.1%}"
            else:
                delta = "    n/a"
            print(
                f"  {key:42s} {base_value:14.4f} -> {current_value:14.4f} "
                f"({delta}) [{kind}]"
            )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="+",
        metavar="BENCH",
        help="repro-bench exports: BASELINE FRESH to gate, or any number "
        "of files with --explain",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print per-key value/delta tables for the given files and "
        "exit 0 (no gating)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the same per-key table as one repro-bench-gate/1 JSON "
        "document (for CI annotations); exit codes are unchanged",
    )
    args = parser.parse_args(argv)

    if args.explain:
        return explain(args.paths, as_json=args.json)
    if len(args.paths) != 2:
        _usage_error(
            f"gating takes exactly two BENCH files (BASELINE FRESH), "
            f"got {len(args.paths)}; use --explain to inspect any number"
        )
    base = gated_numbers(args.paths[0])
    fresh = gated_numbers(args.paths[1])

    # A key present in only one file is a harness/export mismatch, not a
    # perf verdict: name the asymmetry clearly and exit distinctly (2)
    # instead of dressing it up as a regression (or crashing on lookup).
    only_base = sorted(set(base) - set(fresh))
    only_fresh = sorted(set(fresh) - set(base))
    if only_base or only_fresh:
        print(
            "error: benchmark keys differ between the two BENCH files "
            "(did the benchmark or its export change without refreshing "
            "the committed baseline?):",
            file=sys.stderr,
        )
        for key in only_base:
            print(f"  {key}: only in baseline {args.paths[0]}", file=sys.stderr)
        for key in only_fresh:
            print(f"  {key}: only in fresh run {args.paths[1]}", file=sys.stderr)
        return 2

    failures = []
    rows = []
    for key in sorted(base):
        base_value, gated = base[key]
        fresh_value, _ = fresh[key]
        if gated and base_value <= 0:
            print(
                f"error: non-positive baseline value for {key}: {base_value}",
                file=sys.stderr,
            )
            return 2
        if base_value > 0:
            ratio = fresh_value / base_value
            delta = f"{ratio - 1.0:+6.0%}"
        else:
            # Informational near-zero baselines (e.g. an overhead fraction
            # that measured ~0): a ratio would be noise, show raw values.
            ratio = None
            delta = "  n/a "
        verdict = "ok"
        if gated and ratio is not None and ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{key}: {fresh_value:.0f}ns vs baseline {base_value:.0f}ns "
                f"({ratio - 1.0:+.0%})"
            )
        elif not gated:
            verdict = "info"
        rows.append(
            {
                "key": key,
                "gated": gated,
                "baseline": base_value,
                "fresh": fresh_value,
                "ratio": ratio,
                "verdict": verdict,
            }
        )
        if not args.json:
            print(
                f"{key:42s} {base_value:12.4f} -> {fresh_value:12.4f} "
                f"({delta}) [{verdict}]"
            )
    if args.json:
        document = {
            "schema": GATE_SCHEMA,
            "mode": "gate",
            "baseline": args.paths[0],
            "fresh": args.paths[1],
            "tolerance": args.tolerance,
            "ok": not failures,
            "regressions": sum(1 for r in rows if r["verdict"] == "REGRESSION"),
            "keys": rows,
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    if failures:
        print(
            f"\nFAIL: {len(failures)} gated metric(s) regressed beyond "
            f"{args.tolerance:.0%}:",
            file=sys.stderr,
        )
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    if not args.json:
        print(f"\nok: gated benchmark cost within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
