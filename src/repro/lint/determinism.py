"""The determinism-sanitizer rule catalog (DET001 — DET008).

The byte-identity contract — serial ≡ parallel ≡ fastpath ≡ resumed runs,
and all of them independent of ``PYTHONHASHSEED`` — is enforced
dynamically by the replay/equivalence suites and by ``repro sanitize``
(:mod:`repro.sanitize`).  These rules are the static half: they flag the
source patterns that *produce* hash-order, wall-clock, identity, and
environment dependence before any run:

========  ==============================================================
DET001    set/frozenset iteration flowing into an ordered output
DET002    wall-clock/entropy call outside the Observation.span registry
DET003    process-global randomness (module-level ``random``, unseeded
          ``Random()``, ``SystemRandom``)
DET004    ``id()``/``hash()``/``repr()`` inside sort keys or content keys
DET005    unsorted ``os.listdir``/``glob``/``Path.iterdir`` results
DET006    environment reads outside the documented ``REPRO_*`` allowlist
DET007    float accumulation in set-iteration order
DET008    randomness constructed without a threaded ``rng``/``seed``
          parameter (seed-flow analysis over the intra-package call graph)
========  ==============================================================

Unlike the MDL family, which applies to model code (schemes, oracles,
algorithms), every DET rule applies to the *whole* codebase: an iteration
hazard in a report builder corrupts conclusions just as surely as one in a
scheme.  Accepted sites are recorded in the committed baseline
(:mod:`repro.lint.baseline`) with a one-line justification each, or — for
test fixtures only — silenced with ``# repro-lint: disable=DETnnn``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Sequence, Set, Tuple

from .callgraph import FunctionInfo, is_seedish
from .common import attribute_root, callable_name, module_aliases, module_str_constants
from .engine import ModuleModel, ProjectModel
from .findings import Finding, Rule

__all__ = ["DET_RULES", "det_rule_catalog"]


# ----------------------------------------------------------------------
# Set-typed expression tracking (shared by DET001 and DET007)
# ----------------------------------------------------------------------

_SET_FACTORIES = {"set", "frozenset"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _scoped_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function definitions.

    A name bound to a set inside one function must not poison the same name
    in sibling functions, so every scope (the module, or one ``def``) is
    analyzed over its own statements only.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class _SetNames:
    """Names bound to set-typed values within one scope (flow-insensitive)."""

    def __init__(self, scope: ast.AST, inherited: Set[str] = frozenset()) -> None:
        self.names: Set[str] = set(inherited)
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in (
                scope.args.posonlyargs + scope.args.args + scope.args.kwonlyargs
            ):
                if arg.annotation is not None and _is_set_annotation(arg.annotation):
                    self.names.add(arg.arg)
        changed = True
        while changed:  # fixpoint: `a = {…}; b = a | other` needs two passes
            changed = False
            for node in _scoped_walk(scope):
                target: Optional[str] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    if isinstance(node.targets[0], ast.Name):
                        target, value = node.targets[0].id, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    if isinstance(node.target, ast.Name):
                        target, value = node.target.id, node.value
                if target and value is not None and self.is_set_expr(value):
                    if target not in self.names:
                        self.names.add(target)
                        changed = True

    def is_set_expr(self, node: ast.expr) -> bool:
        """Whether ``node`` statically looks like a set/frozenset value."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Call):
            name = callable_name(node.func)
            if name in _SET_FACTORIES:
                return True
            if (
                name in _SET_METHODS
                and isinstance(node.func, ast.Attribute)
                and self.is_set_expr(node.func.value)
            ):
                return True
        return False


_SET_ANNOTATION_NAMES = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}


def _is_set_annotation(annotation: ast.expr) -> bool:
    """True for ``set``/``Set[...]``/``typing.FrozenSet[...]`` annotations."""
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATION_NAMES
    return isinstance(node, ast.Name) and node.id in _SET_ANNOTATION_NAMES


def _parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


# ----------------------------------------------------------------------
# DET001 — set iteration must not feed ordered outputs
# ----------------------------------------------------------------------

#: Calling one of these directly on a set materializes its (hash-dependent)
#: iteration order into an ordered value.
_ORDERING_CONSUMERS = {"list", "tuple", "enumerate", "join"}

#: A ``for`` over a set is order-sensitive when its body does any of this.
_ORDERED_SINK_METHODS = {
    "append",
    "extend",
    "insert",
    "write",
    "writelines",
    "emit",
    "put",
    "send",
}


def _loop_body_has_ordered_sink(body: Sequence[ast.stmt]) -> Optional[ast.AST]:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return node
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _ORDERED_SINK_METHODS:
                    return node
    return None


def _set_scopes(model: ModuleModel) -> Iterator[Tuple[ast.AST, _SetNames]]:
    """Each lint scope with its set-name knowledge (module sets inherited)."""
    module_sets = _SetNames(model.tree)
    yield model.tree, module_sets
    for node in ast.walk(model.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, _SetNames(node, inherited=module_sets.names)


def _check_det001(model: ModuleModel) -> Iterator[Finding]:
    for scope, sets in _set_scopes(model):
        for node in _scoped_walk(scope):
            if isinstance(node, ast.Call):
                name = callable_name(node.func)
                if name in _ORDERING_CONSUMERS and node.args:
                    arg = node.args[0]
                    inner = arg
                    if isinstance(arg, ast.GeneratorExp):
                        inner = arg.generators[0].iter
                    if sets.is_set_expr(inner):
                        yield model.finding(
                            "DET001",
                            node,
                            f"{name}() materializes set iteration order — "
                            "hash-randomization-dependent; sort first "
                            "(sorted(..., key=...)) or keep it unordered",
                        )
            elif isinstance(node, ast.ListComp):
                if any(sets.is_set_expr(gen.iter) for gen in node.generators):
                    yield model.finding(
                        "DET001",
                        node,
                        "list comprehension over a set — the element order is "
                        "hash-randomization-dependent; iterate sorted(...) instead",
                    )
            elif isinstance(node, ast.For) and sets.is_set_expr(node.iter):
                sink = _loop_body_has_ordered_sink(node.body)
                if sink is not None:
                    yield model.finding(
                        "DET001",
                        node,
                        "for-loop over a set feeds an ordered sink "
                        "(append/write/emit/yield) — iterate sorted(...) so the "
                        "output does not depend on PYTHONHASHSEED",
                    )


# ----------------------------------------------------------------------
# DET002 — wall clock and entropy stay inside the span registry
# ----------------------------------------------------------------------

_CLOCK_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "sleep",
    "clock",
}
_DATETIME_ATTRS = {"now", "utcnow", "today"}
_UUID_ATTRS = {"uuid1", "uuid4"}

#: The sanctioned wall-clock sites: the Observation.span timings registry
#: and the nested-span profiler built on it — both live strictly on the
#: wall-clock axis and never feed the event stream (see repro/obs/observe.py
#: and repro/obs/profile.py).
_DET002_ALLOWED_SUFFIXES = ("obs/observe.py", "obs/profile.py")


def _det002_exempt(model: ModuleModel) -> bool:
    return model.normalized_path.endswith(_DET002_ALLOWED_SUFFIXES)


def _check_det002(model: ModuleModel) -> Iterator[Finding]:
    if _det002_exempt(model):
        return
    aliases = module_aliases(model.tree, ("time", "datetime", "os", "uuid", "secrets"))
    remedy = (
        "wall-clock/entropy belongs in the Observation.span timings registry "
        "(repro.obs), never in anything that feeds rows or the event stream"
    )
    for node in ast.walk(model.tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0:
            bad: Optional[str] = None
            if node.module == "time":
                names = [a.name for a in node.names if a.name in _CLOCK_ATTRS]
                if names:
                    bad = f"from time import {', '.join(names)}"
            elif node.module == "datetime":
                pass  # importing the type is fine; .now()/.today() are caught below
            elif node.module == "os":
                if any(a.name == "urandom" for a in node.names):
                    bad = "from os import urandom"
            elif node.module == "uuid":
                names = [a.name for a in node.names if a.name in _UUID_ATTRS]
                if names:
                    bad = f"from uuid import {', '.join(names)}"
            elif node.module == "secrets":
                bad = "from secrets import ..."
            if bad:
                yield model.finding("DET002", node, f"{bad} — {remedy}")
        elif isinstance(node, ast.Attribute):
            root = attribute_root(node)
            if root is None:
                continue
            module = aliases.get(root.id)
            if module is None and root.id in ("datetime", "date"):
                module = "datetime-class"
            if module == "time" and node.value is root and node.attr in _CLOCK_ATTRS:
                yield model.finding("DET002", node, f"time.{node.attr} — {remedy}")
            elif module in ("datetime", "datetime-class") and node.attr in _DATETIME_ATTRS:
                yield model.finding("DET002", node, f"datetime {node.attr}() — {remedy}")
            elif module == "os" and node.value is root and node.attr == "urandom":
                yield model.finding("DET002", node, f"os.urandom — {remedy}")
            elif module == "uuid" and node.value is root and node.attr in _UUID_ATTRS:
                yield model.finding("DET002", node, f"uuid.{node.attr} — {remedy}")
            elif module == "secrets" and node.value is root:
                yield model.finding("DET002", node, f"secrets.{node.attr} — {remedy}")


# ----------------------------------------------------------------------
# DET003 — no process-global randomness anywhere
# ----------------------------------------------------------------------

_RANDOM_ALLOWED_ATTRS = {"Random"}


def _check_det003(model: ModuleModel) -> Iterator[Finding]:
    aliases = module_aliases(model.tree, ("random",))
    for node in ast.walk(model.tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0 and node.module == "random":
            names = [a.name for a in node.names if a.name not in _RANDOM_ALLOWED_ATTRS]
            if names:
                yield model.finding(
                    "DET003",
                    node,
                    f"from random import {', '.join(names)} — module-level RNG "
                    "state (or an unseedable source); inject random.Random(seed)",
                )
        elif isinstance(node, ast.Attribute):
            root = attribute_root(node)
            if root is None or node.value is not root:
                continue
            if aliases.get(root.id) == "random" and node.attr not in _RANDOM_ALLOWED_ATTRS:
                yield model.finding(
                    "DET003",
                    node,
                    f"module-level random.{node.attr} — hidden global RNG state; "
                    "inject a seeded random.Random instead",
                )
        elif isinstance(node, ast.Call):
            name = callable_name(node.func)
            if name == "Random" and not node.args and not node.keywords:
                yield model.finding(
                    "DET003",
                    node,
                    "Random() without a seed draws entropy from the OS — "
                    "pass an explicit seed threaded from the caller",
                )
            elif name == "SystemRandom":
                yield model.finding(
                    "DET003", node, "SystemRandom is unseedable — outside the contract"
                )


# ----------------------------------------------------------------------
# DET004 — no identity functions in sort keys or content keys
# ----------------------------------------------------------------------

_IDENTITY_FUNCS = {"id", "hash", "repr"}
_SORTING_CALLS = {"sorted", "min", "max", "sort"}
_CONTENT_KEY_CALLS = {"content_address", "cell_key"}

#: The sanctioned deterministic sort key for node labels: it validates that
#: a label's repr is content-based before using it (repro.network.graph).
_SANCTIONED_KEYS = {"label_key"}


def _identity_calls_in(expr: ast.expr) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            name = callable_name(node.func)
            if name in _IDENTITY_FUNCS:
                yield node, name


def _check_det004(model: ModuleModel) -> Iterator[Finding]:
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.Call):
            continue
        name = callable_name(node.func)
        if name in _SORTING_CALLS:
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                key = kw.value
                if isinstance(key, ast.Name) and key.id in _IDENTITY_FUNCS:
                    yield model.finding(
                        "DET004",
                        kw.value,
                        f"key={key.id} can fall back to the address-based "
                        "object.__repr__/__hash__ — use "
                        "repro.network.graph.label_key (content-validated)",
                    )
                elif isinstance(key, ast.Lambda):
                    for call, fname in _identity_calls_in(key.body):
                        yield model.finding(
                            "DET004",
                            call,
                            f"{fname}() inside a sort key — memory-address-"
                            "dependent ordering; use label_key or a content key",
                        )
        elif name in _CONTENT_KEY_CALLS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for call, fname in _identity_calls_in(arg):
                    yield model.finding(
                        "DET004",
                        call,
                        f"{fname}() flows into {name}() — content addresses must "
                        "be derived from values, never from object identity",
                    )


# ----------------------------------------------------------------------
# DET005 — directory listings must be sorted
# ----------------------------------------------------------------------

_LISTING_CALLS = {"listdir", "scandir", "iterdir", "glob", "iglob", "rglob"}


def _check_det005(model: ModuleModel) -> Iterator[Finding]:
    parents = _parent_map(model.tree)
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.Call):
            continue
        name = callable_name(node.func)
        if name not in _LISTING_CALLS:
            continue
        parent = parents.get(node)
        if isinstance(parent, ast.Call) and callable_name(parent.func) == "sorted":
            continue
        yield model.finding(
            "DET005",
            node,
            f"{name}() returns entries in filesystem order — wrap it in "
            "sorted(...) so runs do not depend on inode layout",
        )


# ----------------------------------------------------------------------
# DET006 — environment reads stay on the documented allowlist
# ----------------------------------------------------------------------

_ENV_PREFIX = "REPRO_"
_ENV_EXTRA_ALLOWED = {"PYTHONHASHSEED"}


def _env_key_expr(node: ast.AST) -> Optional[ast.expr]:
    """The key expression of an environment *read*, if ``node`` is one."""
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Attribute) and base.attr == "environ":
            return node.slice
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "getenv" and node.args:
                return node.args[0]
            if (
                func.attr == "get"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "environ"
                and node.args
            ):
                return node.args[0]
        elif isinstance(func, ast.Name) and func.id == "getenv" and node.args:
            return node.args[0]
    return None


def _check_det006(model: ModuleModel) -> Iterator[Finding]:
    constants = module_str_constants(model.tree)
    for node in ast.walk(model.tree):
        key_expr = _env_key_expr(node)
        if key_expr is None:
            continue
        key: Optional[str] = None
        if isinstance(key_expr, ast.Constant) and isinstance(key_expr.value, str):
            key = key_expr.value
        elif isinstance(key_expr, ast.Name):
            key = constants.get(key_expr.id)
        if key is not None and (key.startswith(_ENV_PREFIX) or key in _ENV_EXTRA_ALLOWED):
            continue
        shown = key if key is not None else "<dynamic>"
        yield model.finding(
            "DET006",
            node,
            f"environment read of {shown!r} outside the {_ENV_PREFIX}* allowlist "
            "— undocumented env dependence makes runs host-configuration-"
            "dependent; route it through a documented REPRO_* variable",
        )


# ----------------------------------------------------------------------
# DET007 — float accumulation must not follow set order
# ----------------------------------------------------------------------


def _check_det007(model: ModuleModel) -> Iterator[Finding]:
    for scope, sets in _set_scopes(model):
        float_names: Set[str] = set()
        for node in _scoped_walk(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, float)
                ):
                    float_names.add(target.id)
        for node in _scoped_walk(scope):
            if isinstance(node, ast.Call):
                name = callable_name(node.func)
                if name in ("sum", "fsum") and node.args:
                    arg = node.args[0]
                    inner = arg
                    if isinstance(arg, ast.GeneratorExp):
                        inner = arg.generators[0].iter
                    if sets.is_set_expr(inner):
                        yield model.finding(
                            "DET007",
                            node,
                            f"{name}() over a set accumulates floats in hash order "
                            "— float addition is not associative; iterate "
                            "sorted(...) for a reproducible total",
                            severity="warning",
                        )
            elif isinstance(node, ast.For) and sets.is_set_expr(node.iter):
                for stmt in node.body:
                    for inner in ast.walk(stmt):
                        if (
                            isinstance(inner, ast.AugAssign)
                            and isinstance(inner.op, ast.Add)
                            and isinstance(inner.target, ast.Name)
                            and inner.target.id in float_names
                        ):
                            yield model.finding(
                                "DET007",
                                inner,
                                "float accumulator updated inside a for-over-set "
                                "— the rounding depends on PYTHONHASHSEED; "
                                "iterate sorted(...)",
                                severity="warning",
                            )


# ----------------------------------------------------------------------
# DET008 — seed flow: randomness is threaded, never conjured
# ----------------------------------------------------------------------


def _random_constructions(model: ModuleModel) -> Iterator[ast.Call]:
    """Every ``random.Random(...)`` / imported ``Random(...)`` call site."""
    aliases = module_aliases(model.tree, ("random",))
    from_imported = any(
        isinstance(node, ast.ImportFrom)
        and node.module == "random"
        and any(alias.name == "Random" for alias in node.names)
        for node in ast.walk(model.tree)
    )
    for node in ast.walk(model.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "Random":
            root = attribute_root(func)
            if root is not None and aliases.get(root.id) == "random":
                yield node
        elif isinstance(func, ast.Name) and func.id == "Random" and from_imported:
            yield node


def _seed_identifiers_in(expr: ast.expr) -> Set[str]:
    """Seedish identifiers referenced anywhere in ``expr``.

    Both plain names (a ``seed`` parameter or closure variable) and
    attribute accesses (``self._seed``, ``config.rng``) count — each is a
    value threaded in from outside the construction site.
    """
    found: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and is_seedish(node.id):
            found.add(node.id)
        elif isinstance(node, ast.Attribute) and is_seedish(node.attr):
            found.add(node.attr)
    return found


def _check_det008(project: ProjectModel) -> Iterator[Finding]:
    graph = project.call_graph

    # Map each construction to its enclosing function (if any) and judge it.
    constructing_keys: Set[str] = set()
    for model in project.models:
        calls = list(_random_constructions(model))
        if not calls:
            continue
        call_ids = {id(c) for c in calls}
        containers: Dict[int, FunctionInfo] = {}
        for info in graph.functions.values():
            if info.path != model.path:
                continue
            for node in ast.walk(info.node):
                if id(node) in call_ids:
                    containers[id(node)] = info
        for call in calls:
            info = containers.get(id(call))
            if info is None:
                yield model.finding(
                    "DET008",
                    call,
                    "random.Random constructed at module scope — randomness must "
                    "be built inside a function that receives rng/seed from its "
                    "caller",
                )
                continue
            constructing_keys.add(info.key)
            seed_sources: Set[str] = set()
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                seed_sources |= _seed_identifiers_in(arg)
            if not call.args and not call.keywords:
                # Unseeded: DET003's finding; seed-flow adds the threading view.
                yield model.finding(
                    "DET008",
                    call,
                    f"{info.qualname} constructs Random() with no seed — thread "
                    "an explicit rng/seed parameter from the caller",
                )
            elif not seed_sources:
                yield model.finding(
                    "DET008",
                    call,
                    f"{info.qualname} seeds random.Random from a hard-coded "
                    "value — the seed must be threaded in (a seed/rng "
                    "parameter, closure, or attribute; the resolve_rng "
                    "convention), so sweeps can vary it",
                )

    # Transitive: functions whose call chain reaches a construction.
    def reaches_construction(key: str) -> bool:
        return key in constructing_keys or bool(
            graph.reachable_from(key) & constructing_keys
        )

    for key in sorted(graph.functions):
        caller = graph.functions[key]
        if not caller.seedish_params:
            continue
        for site in graph.sites_from(key):
            callee = site.callee
            if not callee.seedish_params:
                continue
            if not reaches_construction(callee.key):
                continue
            if site.passes_seedish():
                continue
            model = project.model_for(caller.path)
            if model is None:
                continue
            yield model.finding(
                "DET008",
                site.node,
                f"{caller.qualname} holds {'/'.join(caller.seedish_params)} but "
                f"calls {callee.qualname} without threading it — the callee "
                "falls back to its own seed and the caller's is silently dropped",
            )


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------

DET_RULES: Sequence[Rule] = (
    Rule(
        code="DET001",
        name="set-order-leak",
        summary="set/frozenset iteration order flows into an ordered output "
        "(list building, join, write/emit, yield)",
        check=_check_det001,
    ),
    Rule(
        code="DET002",
        name="wall-clock-outside-registry",
        summary="wall-clock or entropy call outside the Observation.span "
        "timings registry (repro/obs/observe.py)",
        check=_check_det002,
    ),
    Rule(
        code="DET003",
        name="global-randomness",
        summary="module-level random.*, from-random imports, unseeded Random() "
        "or SystemRandom anywhere in the codebase",
        check=_check_det003,
    ),
    Rule(
        code="DET004",
        name="identity-in-ordering",
        summary="id()/hash()/repr() inside sort keys or content-address "
        "inputs (address-dependent ordering or cache keys)",
        check=_check_det004,
    ),
    Rule(
        code="DET005",
        name="unsorted-listing",
        summary="os.listdir/scandir/glob/Path.iterdir results used without "
        "sorted(...)",
        check=_check_det005,
    ),
    Rule(
        code="DET006",
        name="undocumented-env-read",
        summary="environment read outside the documented REPRO_* allowlist",
        check=_check_det006,
    ),
    Rule(
        code="DET007",
        name="float-accumulation-order",
        summary="float accumulation whose order depends on a set iteration "
        "(non-associative rounding)",
        check=_check_det007,
        severity="warning",
    ),
    Rule(
        code="DET008",
        name="unthreaded-seed",
        summary="randomness constructed without an rng/seed parameter threaded "
        "from the caller (seed-flow over the intra-package call graph)",
        check=_check_det008,
        scope="project",
    ),
)


def det_rule_catalog() -> str:
    """One line per DET rule, for ``repro lint --list-rules``."""
    return "\n".join(f"{rule.code} [{rule.name}] {rule.summary}" for rule in DET_RULES)
