"""Flooding gossip — the zero-advice gossip baseline.

Every node spontaneously announces its rumor on all ports; whenever a node
learns something new it re-announces its whole knowledge on every port
except the one the news arrived on.  Each node's knowledge grows at most
``n`` times and each growth triggers at most ``deg`` messages, so the
message complexity is ``O(n * m)`` — and on dense networks it really does
pay that, which is the gap the :class:`TreeGossip` +
:class:`repro.oracles.GossipTreeOracle` pair closes to ``2(n - 1)``
messages for ``Theta(n log n)`` advice bits (experiment E10).
"""

from __future__ import annotations

from typing import Hashable, Optional, Set

from ..core.gossip import GOSSIP_KIND, rumor_of
from ..core.scheme import Algorithm
from ..encoding import BitString
from ..simulator.node import NodeContext

__all__ = ["FloodGossip"]


class _FloodGossipScheme:
    def __init__(self) -> None:
        self._known: Set = set()

    def on_init(self, ctx: NodeContext) -> None:
        self._known.add(rumor_of(ctx.node_id))
        payload = (GOSSIP_KIND, frozenset(self._known))
        for port in range(ctx.degree):
            ctx.send(payload, port)

    def on_receive(self, ctx: NodeContext, payload, port: int) -> None:
        if not (isinstance(payload, tuple) and len(payload) == 2 and payload[0] == GOSSIP_KIND):
            return
        news = payload[1] - self._known
        if not news:
            return
        self._known |= news
        updated = (GOSSIP_KIND, frozenset(self._known))
        for p in range(ctx.degree):
            if p != port:
                ctx.send(updated, p)


class FloodGossip(Algorithm):
    """Announce-on-growth flooding; zero advice, ``O(n * m)`` messages."""

    is_wakeup_algorithm = False
    anonymous_safe = False  # reads ctx.node_id

    def scheme_for(
        self,
        advice: BitString,
        is_source: bool,
        node_id: Optional[Hashable],
        degree: int,
    ) -> _FloodGossipScheme:
        return _FloodGossipScheme()
