"""Retry and timeout policy for the fault-tolerant runner.

One small value object so every layer — CLI flags, the runner core, the
tests — talks about fault handling in the same terms: a per-cell
``timeout`` (seconds of wall clock from the moment the cell is handed to
a worker), a bounded number of ``retries`` after the first attempt, and
exponential backoff between attempts.  Backoff sleeps happen in the
*parent*, between resubmissions, so they never perturb the deterministic
result stream; with ``backoff_base=0`` (the tests' setting) retries are
immediate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "DEFAULT_RETRIES"]

#: Default retry budget when the CLI enables the runner without ``--retries``.
DEFAULT_RETRIES = 2


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try one unit of work before degrading it to a
    ``failed`` row.

    ``retries`` is the number of *re*-attempts: a cell runs at most
    ``retries + 1`` times.  ``timeout`` of ``None`` disables the per-cell
    deadline.  The delay before re-attempt ``k`` (1-based) is
    ``backoff_base * backoff_factor ** (k - 1)`` seconds.
    """

    retries: int = DEFAULT_RETRIES
    timeout: Optional[float] = None
    backoff_base: float = 0.25
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts a cell may consume (first try + retries)."""
        return self.retries + 1

    def delay(self, attempt: int) -> float:
        """Seconds to back off before re-attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.backoff_base * self.backoff_factor ** (attempt - 1)
