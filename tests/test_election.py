"""Tests for leader election: the 1-bit oracle, min-id flooding, and the
anonymous-symmetric impossibility."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import AdvisedElection, MinIdElection
from repro.core import LEADER, NullOracle, run_election
from repro.network import (
    complete_graph_star,
    cycle_graph,
    hypercube_graph,
    random_connected_gnp,
)
from repro.oracles import LeaderBitOracle
from repro.simulator import make_scheduler


class TestLeaderBitOracle:
    def test_size_is_one(self, zoo_graph):
        assert LeaderBitOracle().size_on(zoo_graph) == 1

    def test_default_picks_min_label(self, k5):
        advice = LeaderBitOracle().advise(k5)
        assert len(advice[1]) == 1  # K*_n labels start at 1
        assert all(len(advice[v]) == 0 for v in range(2, 6))

    def test_custom_picker(self, k5):
        oracle = LeaderBitOracle(picker=lambda g: max(g.nodes()))
        advice = oracle.advise(k5)
        assert len(advice[5]) == 1

    def test_picker_must_choose_a_node(self, k5):
        oracle = LeaderBitOracle(picker=lambda g: "nope")
        with pytest.raises(ValueError):
            oracle.advise(k5)


class TestAdvisedElection:
    def test_one_bit_zero_messages(self, zoo_graph):
        result = run_election(zoo_graph, LeaderBitOracle(), AdvisedElection())
        assert result.success
        assert result.messages == 0
        assert result.oracle_bits == 1

    def test_anonymous_still_works(self, k5):
        # the bit carries everything; identifiers are irrelevant
        result = run_election(k5, LeaderBitOracle(), AdvisedElection(), anonymous=True)
        assert result.success

    def test_no_oracle_means_no_leader(self, k5):
        result = run_election(k5, NullOracle(), AdvisedElection())
        assert not result.success
        assert result.leaders == 0


class TestMinIdElection:
    def test_elects_min_label(self, zoo_graph):
        result = run_election(zoo_graph, NullOracle(), MinIdElection())
        assert result.success
        expected = min(zoo_graph.nodes(), key=repr)
        assert result.outputs[expected] == LEADER

    @pytest.mark.parametrize("sched", ("sync", "fifo", "random"))
    def test_schedulers(self, k5, sched):
        result = run_election(
            k5, NullOracle(), MinIdElection(), scheduler=make_scheduler(sched, 11)
        )
        assert result.success

    def test_message_cost_grows_with_m(self):
        sparse = run_election(cycle_graph(16), NullOracle(), MinIdElection())
        dense = run_election(complete_graph_star(16), NullOracle(), MinIdElection())
        assert dense.messages > sparse.messages

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=3, max_value=14),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_random_graphs(self, n, seed):
        rng = random.Random(seed)
        g = random_connected_gnp(n, 0.5, rng, port_order="random")
        assert run_election(g, NullOracle(), MinIdElection()).success


class TestAnonymousImpossibility:
    """Deterministic anonymous election fails on vertex-transitive,
    port-symmetric networks: every node's run is identical."""

    @pytest.mark.parametrize("n", (3, 4, 6, 9))
    def test_symmetric_ring_all_or_nothing(self, n):
        result = run_election(
            cycle_graph(n), NullOracle(), MinIdElection(), anonymous=True
        )
        assert result.leaders in (0, result.graph_nodes)
        assert not result.success

    def test_symmetric_hypercube(self):
        result = run_election(
            hypercube_graph(3), NullOracle(), MinIdElection(), anonymous=True
        )
        assert not result.success

    def test_one_bit_breaks_the_symmetry(self):
        # the impossibility dissolves with a single advice bit
        result = run_election(
            cycle_graph(8), LeaderBitOracle(), AdvisedElection(), anonymous=True
        )
        assert result.success
