"""Cross-module integration tests: the full paper pipeline, end to end.

These tie everything together the way a user of the library would: build a
network, pick an oracle/algorithm pair, run under a scheduler, and check the
theorem-level guarantees — including on the lower-bound gadget families and
under serialization round trips.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DFSTokenWakeup,
    Flooding,
    LightTreeBroadcastOracle,
    NullOracle,
    SchemeB,
    SpanningTreeWakeupOracle,
    TreeWakeup,
    clique_family_graph,
    complete_graph_star,
    flooding_message_count,
    make_scheduler,
    random_connected_gnp,
    run_broadcast,
    run_wakeup,
    subdivision_family_graph,
)
from repro.network import from_json, sample_edge_tuple, to_json


class TestTheoremPipelines:
    """Both constructive theorems, exercised exactly as stated."""

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=18),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_theorem_21_pipeline(self, n, seed):
        rng = random.Random(seed)
        g = random_connected_gnp(n, 0.5, rng, port_order="random")
        oracle = SpanningTreeWakeupOracle()
        result = run_wakeup(g, oracle, TreeWakeup(), scheduler=make_scheduler("random", seed))
        assert result.success
        assert result.messages == g.num_nodes - 1
        assert result.oracle_bits <= SpanningTreeWakeupOracle.size_upper_bound(g.num_nodes)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=4, max_value=18),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_theorem_31_pipeline(self, n, seed):
        rng = random.Random(seed)
        g = random_connected_gnp(n, 0.5, rng, port_order="random")
        result = run_broadcast(
            g, LightTreeBroadcastOracle(), SchemeB(), scheduler=make_scheduler("fifo", seed)
        )
        assert result.success
        assert result.messages <= 2 * (g.num_nodes - 1)
        assert result.oracle_bits <= 8 * g.num_nodes


class TestGadgetFamilies:
    def test_both_upper_bounds_on_subdivision_gadget(self):
        rng = random.Random(8)
        g = subdivision_family_graph(16, sample_edge_tuple(16, 16, rng))
        w = run_wakeup(g, SpanningTreeWakeupOracle(), TreeWakeup())
        b = run_broadcast(g, LightTreeBroadcastOracle(), SchemeB())
        assert w.success and w.messages == g.num_nodes - 1
        assert b.success and b.messages <= 2 * (g.num_nodes - 1)
        # the separation is visible on the hard family too
        assert w.oracle_bits > b.oracle_bits

    def test_both_upper_bounds_on_clique_gadget(self):
        g, __, __ = clique_family_graph(16, 4, random.Random(9))
        w = run_wakeup(g, SpanningTreeWakeupOracle(), TreeWakeup())
        b = run_broadcast(g, LightTreeBroadcastOracle(), SchemeB())
        assert w.success and b.success

    def test_flooding_pays_quadratically_on_complete(self):
        g = complete_graph_star(24)
        flood = run_broadcast(g, NullOracle(), Flooding())
        scheme_b = run_broadcast(g, LightTreeBroadcastOracle(), SchemeB())
        assert flood.messages == flooding_message_count(24, g.num_edges)
        assert flood.messages > 10 * scheme_b.messages


class TestSerializationPipeline:
    def test_results_identical_after_roundtrip(self, zoo_graph):
        g2 = from_json(to_json(zoo_graph))
        r1 = run_broadcast(zoo_graph, LightTreeBroadcastOracle(), SchemeB())
        r2 = run_broadcast(g2, LightTreeBroadcastOracle(), SchemeB())
        assert r1.messages == r2.messages
        assert r1.oracle_bits == r2.oracle_bits


class TestDeterminism:
    def test_sync_runs_are_reproducible(self, zoo_graph):
        a = run_broadcast(zoo_graph, LightTreeBroadcastOracle(), SchemeB())
        b = run_broadcast(zoo_graph, LightTreeBroadcastOracle(), SchemeB())
        assert [
            (d.step, d.payload, d.sender, d.receiver) for d in a.trace.deliveries
        ] == [(d.step, d.payload, d.sender, d.receiver) for d in b.trace.deliveries]

    def test_seeded_async_reproducible(self, k5):
        a = run_wakeup(
            k5, SpanningTreeWakeupOracle(), TreeWakeup(), scheduler=make_scheduler("random", 42)
        )
        b = run_wakeup(
            k5, SpanningTreeWakeupOracle(), TreeWakeup(), scheduler=make_scheduler("random", 42)
        )
        assert [d.receiver for d in a.trace.deliveries] == [
            d.receiver for d in b.trace.deliveries
        ]


class TestOracleAlgorithmMismatches:
    """Robustness: pairing the wrong oracle with an algorithm degrades
    gracefully rather than crashing."""

    def test_wakeup_oracle_with_scheme_b(self, k5):
        # Scheme B decodes weight lists; children-port advice is garbage to
        # it but must not crash, and M still never leaves the source's ken
        result = run_broadcast(k5, SpanningTreeWakeupOracle(), SchemeB())
        assert result.completed  # quiesces; success not guaranteed

    def test_broadcast_oracle_with_tree_wakeup(self, k5):
        result = run_wakeup(k5, LightTreeBroadcastOracle(), TreeWakeup())
        assert result.completed

    def test_null_oracle_with_tree_wakeup(self, k5):
        result = run_wakeup(k5, NullOracle(), TreeWakeup())
        assert result.completed
        assert result.messages == 0
        assert not result.success

    def test_dfs_ignores_advice(self, k5):
        with_advice = run_wakeup(k5, SpanningTreeWakeupOracle(), DFSTokenWakeup())
        without = run_wakeup(k5, NullOracle(), DFSTokenWakeup())
        assert with_advice.messages == without.messages
