"""The deterministic profiler: nested wall-clock spans with self/cumulative
time, and exporters for Chrome-trace/Perfetto JSON and collapsed-stack
flamegraph text.

This module is the *nested* extension of the flat ``Observation.span``
timings registry (see :mod:`repro.obs.observe`): a :class:`Profiler`
attached to an :class:`~repro.obs.Observation` receives every span the
library opens — plus the engine-internal phases (topology compile, the
execution loop) and per-sweep-cell spans that only exist on the profiler
axis — and records them as a stack of :class:`SpanRecord` frames with
begin/end offsets, depth, and *self* time (cumulative minus children).

Discipline: wall-clock numbers live **only** here and in the ``timings``
registry.  Nothing in this module ever touches the deterministic event
stream or the event-derived metrics registry, so attaching a profiler can
never perturb the byte-identity guarantees of :mod:`repro.obs` (rules
MDL003/DET002).  The structural side of a profile — span names, nesting,
counts — *is* deterministic for a fixed workload; only the measured
seconds are host-dependent.

Exporters
---------
* :func:`chrome_trace` — the Chrome Trace Event JSON format (complete
  ``"ph": "X"`` events), loadable in ``chrome://tracing``, Perfetto UI,
  and speedscope.
* :func:`collapsed_stacks` — Brendan Gregg's collapsed-stack text
  (``root;child;leaf <self-microseconds>``), the input format of
  ``flamegraph.pl`` and every flamegraph renderer since.
* :meth:`Profiler.aggregate` / :meth:`Profiler.as_rows` — in-process
  per-phase tables (count, cumulative, self, min/max) for CLI output.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SpanRecord",
    "PhaseStat",
    "Profiler",
    "chrome_trace",
    "chrome_trace_json",
    "collapsed_stacks",
]

#: Separator used to render a span path ("simulate/engine") in tables,
#: aggregates, and the collapsed-stack export (which itself uses ";").
PATH_SEP = "/"


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed span: where it sat in the stack and what it cost."""

    path: Tuple[str, ...]  # root-first chain of span names, self last
    start_s: float  # offset from the profiler's origin
    duration_s: float  # cumulative wall time
    self_s: float  # cumulative minus time spent in child spans

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    @property
    def path_str(self) -> str:
        return PATH_SEP.join(self.path)


@dataclass
class PhaseStat:
    """Aggregate of every span sharing one path."""

    path: str
    count: int = 0
    cum_s: float = 0.0
    self_s: float = 0.0
    min_s: Optional[float] = None
    max_s: Optional[float] = None

    def add(self, record: SpanRecord) -> None:
        self.count += 1
        self.cum_s += record.duration_s
        self.self_s += record.self_s
        d = record.duration_s
        self.min_s = d if self.min_s is None else min(self.min_s, d)
        self.max_s = d if self.max_s is None else max(self.max_s, d)


class _Frame:
    __slots__ = ("name", "start", "child_s")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.child_s = 0.0


class Profiler:
    """Collects nested span records.  Attach via
    ``Observation(profile=Profiler())``; every ``obs.span(...)`` /
    ``obs.wallspan(...)`` then lands here with full nesting context.

    ``begin``/``end`` must pair like brackets; :meth:`end` raises on an
    empty stack, and an unclosed span simply never produces a record
    (there is nothing sensible to report for it).
    """

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self._stack: List[_Frame] = []
        self._origin = perf_counter()

    # -- the bracket API (what Observation.span drives) -----------------
    def begin(self, name: str) -> None:
        self._stack.append(_Frame(name, perf_counter()))

    def end(self) -> None:
        if not self._stack:
            raise RuntimeError("Profiler.end() without a matching begin()")
        now = perf_counter()
        frame = self._stack.pop()
        duration = now - frame.start
        path = tuple(f.name for f in self._stack) + (frame.name,)
        if self._stack:
            self._stack[-1].child_s += duration
        self.records.append(
            SpanRecord(
                path=path,
                start_s=frame.start - self._origin,
                duration_s=duration,
                self_s=duration - frame.child_s,
            )
        )

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Standalone use, without an Observation."""
        self.begin(name)
        try:
            yield
        finally:
            self.end()

    # -- aggregation -----------------------------------------------------
    def aggregate(self) -> Dict[str, PhaseStat]:
        """Per-path totals, keyed by the ``/``-joined span path, in sorted
        path order (deterministic given a deterministic workload)."""
        stats: Dict[str, PhaseStat] = {}
        for record in self.records:
            key = record.path_str
            stat = stats.get(key)
            if stat is None:
                stat = stats[key] = PhaseStat(path=key)
            stat.add(record)
        return {key: stats[key] for key in sorted(stats)}

    def as_rows(self) -> List[Dict[str, Any]]:
        """Table rows for :func:`repro.analysis.tables.format_table`."""
        rows: List[Dict[str, Any]] = []
        for stat in self.aggregate().values():
            rows.append(
                {
                    "phase": stat.path,
                    "count": stat.count,
                    "cum_s": round(stat.cum_s, 6),
                    "self_s": round(stat.self_s, 6),
                    "min_s": round(stat.min_s, 6) if stat.min_s is not None else None,
                    "max_s": round(stat.max_s, 6) if stat.max_s is not None else None,
                }
            )
        return rows

    @property
    def total_s(self) -> float:
        """Wall time covered by top-level spans."""
        return sum(r.duration_s for r in self.records if r.depth == 0)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def chrome_trace(profiler: Profiler, process_name: str = "repro") -> Dict[str, Any]:
    """The profile as a Chrome Trace Event document (``"ph": "X"``
    complete events, microsecond timestamps).

    Loadable in ``chrome://tracing``, https://ui.perfetto.dev, and
    speedscope.  Events are sorted by ``(ts, -dur)`` so parents precede
    the children they enclose — the order the viewers expect.
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]
    spans = sorted(
        profiler.records, key=lambda r: (r.start_s, -r.duration_s, r.path)
    )
    for record in spans:
        events.append(
            {
                "name": record.name,
                "cat": "phase",
                "ph": "X",
                "ts": round(record.start_s * 1e6, 3),
                "dur": round(record.duration_s * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": {
                    "path": record.path_str,
                    "self_us": round(record.self_s * 1e6, 3),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(profiler: Profiler, process_name: str = "repro") -> str:
    """:func:`chrome_trace`, serialized the way the viewers like it."""
    return json.dumps(chrome_trace(profiler, process_name), indent=1, sort_keys=True)


def collapsed_stacks(profiler: Profiler) -> str:
    """Collapsed-stack flamegraph text: one ``a;b;c <self-us>`` line per
    distinct span path, in sorted path order, weighted by **self** time in
    integer microseconds (so the flamegraph's widths add up exactly to
    wall time instead of double-counting nested spans).  Paths whose self
    time rounds to zero microseconds are kept at weight 0 so the frame
    still appears in the graph.
    """
    weights: Dict[Tuple[str, ...], int] = {}
    for record in profiler.records:
        weights[record.path] = weights.get(record.path, 0) + int(
            round(record.self_s * 1e6)
        )
    lines = [f"{';'.join(path)} {weight}" for path, weight in sorted(weights.items())]
    return "\n".join(lines) + ("\n" if lines else "")
